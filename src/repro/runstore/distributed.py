"""Cooperative multi-worker sweep execution over one run store.

The store's content addresses already make duplicate work *harmless*
(two processes committing the same fingerprint write byte-identical
objects); this module makes it *rare enough to be free*: N worker
processes — forked locally with ``--workers N`` / ``python -m repro
workers start``, or launched on separate machines against a shared
filesystem — drain one sweep's grid cooperatively with zero duplicate
simulation in the steady state.

Three pieces:

* :class:`LeaseManager` — advisory per-point locks under
  ``<store>/leases/``.  A lease is a lockfile created with
  ``O_CREAT | O_EXCL`` (atomic on POSIX and on NFSv3+ for local and
  shared filesystems alike), named by the point's fingerprint and
  carrying the owner's identity as JSON.  The owner refreshes the
  file's mtime at every chunk boundary (:meth:`~LeaseManager.heartbeat`);
  a lease whose mtime is older than the TTL is *stale* — its owner
  crashed or stalled — and any live worker may reclaim it
  (:meth:`~LeaseManager.reclaim`, a rename-then-unlink so exactly one
  reclaimer wins) and recompute the point, resuming from whatever
  chunks the dead owner journaled.

* :func:`new_worker_id` — a filesystem-safe identity
  (``host-pid-nonce``) used to name leases, per-worker journals
  (``journals/<sweep>.<worker_id>.jsonl``) and status files.

* :class:`WorkerStatus` — a small atomically-rewritten JSON status
  file per worker under ``<store>/workers/``, read by
  ``python -m repro runs workers`` for the live fleet view
  (per-worker throughput, reclaimed leases, last heartbeat).

Safety model: leases are an *optimization*, not a correctness
mechanism.  Results are pure functions of their fingerprint, commits
are atomic write-then-rename, and chunk journals are append-only per
worker — so even a pathological TTL misconfiguration (two workers
computing one point) produces identical bytes, never corruption.  The
TTL therefore only needs to be long enough that a live worker's
longest chunk never looks stale; it is configurable per sweep
(``--lease-ttl`` / ``REPRO_LEASE_TTL``).
"""

from __future__ import annotations

import json
import os
import re
import socket
import time
import uuid
from pathlib import Path

from ..errors import ExperimentError
from .store import atomic_write_text

__all__ = [
    "DEFAULT_LEASE_TTL",
    "LeaseLost",
    "LeaseManager",
    "WorkerStatus",
    "lease_ttl_from_env",
    "new_worker_id",
    "read_worker_statuses",
]

#: Default stale-lease TTL in seconds.  Generous on purpose: a lease
#: only goes stale when its owner misses every chunk-boundary
#: heartbeat for this long, and a false positive means duplicated (not
#: corrupted) work.  Sweeps with multi-minute chunks should raise it.
DEFAULT_LEASE_TTL = 600.0

_SAFE = re.compile(r"[^A-Za-z0-9_-]+")


class LeaseLost(ExperimentError):
    """This worker's lease on a point was reclaimed by a peer.

    Raised at a chunk boundary when the heartbeat discovers the lease
    file is gone or owned by someone else (the TTL elapsed while a
    chunk ran long).  Every completed chunk is already journaled, so
    the reclaiming worker resumes from the checkpoint; the loser
    simply abandons the point and picks up other work.
    """


def new_worker_id(prefix: str | None = None) -> str:
    """A filesystem-safe worker identity: ``[prefix-]host-pid-nonce``.

    Worker ids never contain ``.`` — per-worker journal files are
    named ``<sweep>.<worker_id>.jsonl`` and split on the dot.
    """
    host = _SAFE.sub("-", socket.gethostname()) or "host"
    nonce = uuid.uuid4().hex[:6]
    base = f"{host}-{os.getpid()}-{nonce}"
    if prefix:
        base = f"{_SAFE.sub('-', prefix)}-{base}"
    return base


def lease_ttl_from_env(value: float | None = None) -> float:
    """Resolve the lease TTL: explicit > ``REPRO_LEASE_TTL`` > default."""
    if value is not None:
        ttl = float(value)
    else:
        ttl = float(os.environ.get("REPRO_LEASE_TTL",
                                   DEFAULT_LEASE_TTL))
    if ttl <= 0:
        raise ExperimentError(f"lease TTL must be positive, got {ttl}")
    return ttl


class LeaseManager:
    """Advisory per-fingerprint locks for cooperating sweep workers.

    Parameters
    ----------
    root:
        The lease directory (``RunStore.leases_dir``).
    worker_id:
        This worker's identity, written into every lease it takes.
    ttl:
        Staleness threshold in seconds: a lease whose mtime is older
        than this is reclaimable.
    clock:
        Injectable time source (tests simulate worker death by
        advancing it).
    """

    def __init__(self, root, worker_id: str, *,
                 ttl: float | None = None, clock=time.time):
        self.root = Path(root)
        self.worker_id = worker_id
        self.ttl = lease_ttl_from_env(ttl)
        self._clock = clock
        self.reclaimed = 0

    def path(self, fp: str) -> Path:
        return self.root / f"{fp}.lock"

    # -- the lease lifecycle ------------------------------------------

    def acquire(self, fp: str) -> bool:
        """Try to take the lease on ``fp``; never blocks.

        ``O_CREAT | O_EXCL`` guarantees exactly one creator even when
        N workers race on a shared filesystem.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        payload = json.dumps({
            "point": fp,
            "worker": self.worker_id,
            "pid": os.getpid(),
            "acquired_at": self._clock(),
        })
        try:
            handle = os.open(self.path(fp),
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        try:
            os.write(handle, payload.encode("utf-8"))
            os.fsync(handle)
        finally:
            os.close(handle)
        return True

    def owner(self, fp: str) -> dict | None:
        """The lease record for ``fp``, or ``None`` when unleased.

        A lease file that cannot be parsed (torn write from a dying
        worker) reads as an anonymous lease — it still ages out and
        gets reclaimed.
        """
        path = self.path(fp)
        try:
            stat = path.stat()
            with open(path, encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            try:
                stat = path.stat()
            except OSError:
                return None
            record = {}
        if not isinstance(record, dict):
            record = {}
        record.setdefault("point", fp)
        record["age"] = max(0.0, self._clock() - stat.st_mtime)
        record["stale"] = record["age"] > self.ttl
        return record

    def owned(self, fp: str) -> bool:
        record = self.owner(fp)
        return bool(record) and record.get("worker") == self.worker_id

    def heartbeat(self, fp: str) -> None:
        """Refresh the lease mtime; raise :class:`LeaseLost` if gone.

        Called at chunk boundaries by the orchestrator.  Discovering
        the lease reclaimed mid-compute means a peer decided this
        worker was dead; the peer resumes from the journaled chunks,
        so the correct move is to abandon the point, not to race it.
        """
        if not self.owned(fp):
            raise LeaseLost(
                f"lease on {fp[:12]} was reclaimed by a peer "
                f"(ttl={self.ttl:g}s); abandoning the point")
        os.utime(self.path(fp))

    def release(self, fp: str) -> None:
        """Drop the lease if this worker still holds it."""
        if self.owned(fp):
            self.path(fp).unlink(missing_ok=True)

    def reclaim(self, fp: str) -> bool:
        """Remove a *stale* lease so a live worker can re-acquire.

        Rename-then-unlink: of any number of concurrent reclaimers,
        exactly one wins the rename; the rest see ``ENOENT`` and
        return ``False`` (they will find the lease free, or freshly
        re-taken, on their next acquire attempt).
        """
        path = self.path(fp)
        try:
            stat = path.stat()
        except OSError:
            return False
        if self._clock() - stat.st_mtime <= self.ttl:
            return False
        doomed = path.with_name(
            f"{path.name}.reclaim-{uuid.uuid4().hex[:8]}")
        try:
            os.rename(path, doomed)
        except OSError:
            return False
        doomed.unlink(missing_ok=True)
        self.reclaimed += 1
        return True

    # -- introspection -------------------------------------------------

    def live(self) -> list[dict]:
        """Every lease on disk, oldest first (for ``runs workers``)."""
        if not self.root.is_dir():
            return []
        leases = []
        for path in sorted(self.root.glob("*.lock")):
            record = self.owner(path.name[:-len(".lock")])
            if record is not None:
                leases.append(record)
        leases.sort(key=lambda record: -record["age"])
        return leases


class WorkerStatus:
    """One worker's atomically-rewritten status file.

    ``<store>/workers/<worker_id>.json`` carries the worker's sweep,
    lifecycle state, orchestrator counters, and timestamps.  Written
    with the store's write-then-rename helper, so readers (the
    ``runs workers`` view, the distributed benchmark's duplicate
    audit) never see a torn file.
    """

    def __init__(self, root, worker_id: str, *, sweep: str,
                 clock=time.time):
        self.path = Path(root) / f"{worker_id}.json"
        self.worker_id = worker_id
        self.sweep = sweep
        self._clock = clock
        self._started = clock()

    @property
    def started_at(self) -> float:
        """When this worker started (the fleet audit's epoch)."""
        return self._started

    def write(self, state: str, counters: dict | None = None,
              **extra) -> None:
        now = self._clock()
        payload = {
            "worker": self.worker_id,
            "sweep": self.sweep,
            "pid": os.getpid(),
            "state": state,
            "started_at": self._started,
            "updated_at": now,
            "elapsed": max(0.0, now - self._started),
            "counters": dict(counters or {}),
        }
        payload.update(extra)
        atomic_write_text(self.path, json.dumps(payload, indent=1))


def read_worker_statuses(root) -> list[dict]:
    """Every readable worker status file under ``root``, oldest first."""
    root = Path(root)
    if not root.is_dir():
        return []
    statuses = []
    for path in sorted(root.glob("*.json")):
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            continue
        if isinstance(payload, dict):
            statuses.append(payload)
    statuses.sort(key=lambda status: status.get("started_at", 0.0))
    return statuses
