"""``python -m repro runs`` — inspect and maintain the run store.

Subcommands:

* ``list`` — every committed point: fingerprint, kind, protocol, key
  parameters, wall time, and owning sweep;
* ``status`` — store totals plus per-journal progress (committed
  points vs chunk checkpoints still pending), i.e. what ``--resume``
  would pick up;
* ``gc`` — reclaim finished journals, schema-orphaned objects, and
  stray temp files (``--all`` wipes the store).

All subcommands honor ``--output-dir`` / ``REPRO_OUTPUT_DIR`` the same
way the experiments do: the store lives under
``<output-dir>/.runstore/``.
"""

from __future__ import annotations

import argparse

from ..experiments.io import format_table
from .fingerprint import RESULT_SCHEMA_VERSION
from .journal import chunk_map, committed_points
from .store import RunStore

__all__ = ["main"]


def _entry_row(entry: dict) -> dict:
    key = entry.get("key", {})
    meta = entry.get("meta", {})
    protocol = key.get("protocol", {})
    row = {
        "fingerprint": entry.get("fingerprint", "")[:12],
        "kind": key.get("kind", "?"),
        "protocol": protocol.get("kind", "-") if isinstance(protocol, dict)
        else str(protocol),
        "n": key.get("n", "-"),
        "trials": key.get("trials", "-"),
        "engine": meta.get("engine_resolved", key.get("engine", "-")),
        "wall_seconds": meta.get("wall_seconds", float("nan")),
        "sweep": meta.get("sweep", "-"),
    }
    return row


def cmd_list(store: RunStore) -> int:
    rows = [_entry_row(entry) for entry in store.entries()]
    if not rows:
        print(f"run store {store.root} is empty")
        return 0
    print(format_table(rows, title=f"run store {store.root} "
                                   f"(schema v{RESULT_SCHEMA_VERSION})"))
    print(f"\n{len(rows)} committed point(s)")
    return 0


def cmd_status(store: RunStore) -> int:
    objects = list(store.entries())
    total_bytes = sum(path.stat().st_size
                      for path in store.objects_dir.glob("*/*.json")
                      ) if store.objects_dir.is_dir() else 0
    print(f"run store {store.root}")
    print(f"  objects: {len(objects)} committed point(s), "
          f"{total_bytes} bytes")
    journals = list(store.journals())
    if not journals:
        print("  journals: none (no sweep in flight)")
        return 0
    rows = []
    for name, journal in journals:
        records = journal.replay()
        pending = chunk_map(records)
        rows.append({
            "sweep": name,
            "records": len(records),
            "committed_points": len(committed_points(records)),
            "points_in_flight": len(pending),
            "checkpointed_chunks": sum(len(chunks)
                                       for chunks in pending.values()),
            "bytes": journal.path.stat().st_size,
        })
    print()
    print(format_table(rows, title="journals (resumable with --resume)"))
    return 0


def cmd_gc(store: RunStore, drop_all: bool) -> int:
    removed = store.gc(drop_all=drop_all)
    scope = "everything" if drop_all else "dead state"
    print(f"gc({scope}) under {store.root}: "
          f"removed {removed['journals']} journal(s), "
          f"{removed['objects']} object(s), "
          f"{removed['temp_files']} temp file(s)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro runs",
        description="Inspect and maintain the experiment run store.")
    parser.add_argument("action", choices=("list", "status", "gc"),
                        help="what to do with the store")
    parser.add_argument("--output-dir", default=None,
                        help="results directory owning the store "
                             "(default: results/ or $REPRO_OUTPUT_DIR)")
    parser.add_argument("--all", action="store_true",
                        help="gc only: wipe the entire store, including "
                             "valid cache entries")
    args = parser.parse_args(argv)

    store = RunStore.for_output_dir(args.output_dir)
    if args.action == "list":
        return cmd_list(store)
    if args.action == "status":
        return cmd_status(store)
    return cmd_gc(store, drop_all=args.all)


if __name__ == "__main__":
    raise SystemExit(main())
