"""``python -m repro runs`` — inspect and maintain the run store.

Subcommands:

* ``list`` — every committed point: fingerprint, kind, protocol, key
  parameters, wall time, and owning sweep;
* ``status`` — store totals plus per-journal progress (committed
  points vs chunk checkpoints still pending), i.e. what ``--resume``
  would pick up, and the simulation service's queued submissions and
  in-flight (chunk-checkpointed) points from the store introspection
  API; ``--metrics`` adds a per-point compute table (trials,
  interaction counts, throughput) from the telemetry meta each point
  carries;
* ``workers`` — the distributed-sweep fleet view: live leases (point,
  owner, age, staleness), per-worker status files (state, points
  computed, throughput, reclaimed leases), and any sweep manifests
  with work still outstanding;
* ``gc`` — reclaim finished journals, schema-orphaned objects, retired
  worker status files, lease tombstones, and stray temp files
  (``--all`` wipes the store; ``--dry-run`` prints what would be
  deleted and deletes nothing).

All subcommands honor ``--output-dir`` / ``REPRO_OUTPUT_DIR`` the same
way the experiments do: the store lives under
``<output-dir>/.runstore/``.
"""

from __future__ import annotations

import argparse

from ..experiments.io import format_table
from .distributed import LeaseManager, read_worker_statuses
from .fingerprint import RESULT_SCHEMA_VERSION
from .journal import chunk_map, committed_points
from .store import RunStore

__all__ = ["main"]


def _number(value):
    """``value`` if it is a plain number, else ``None``.

    Pre-telemetry store entries (and opaque-thunk points) can carry
    ``meta: null`` or ``wall_seconds: null``; those render as ``-``
    instead of crashing the table.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return value


def _entry_row(entry: dict) -> dict:
    key = entry.get("key") or {}
    meta = entry.get("meta") or {}
    protocol = key.get("protocol") or {}
    wall = _number(meta.get("wall_seconds"))
    row = {
        "fingerprint": entry.get("fingerprint", "")[:12],
        "kind": key.get("kind", "?"),
        "protocol": protocol.get("kind", "-") if isinstance(protocol, dict)
        else str(protocol),
        "n": key.get("n", "-"),
        "trials": key.get("trials", "-"),
        "engine": meta.get("engine_resolved", key.get("engine", "-")),
        "wall_seconds": "-" if wall is None else wall,
        "sweep": meta.get("sweep", "-"),
    }
    return row


def cmd_list(store: RunStore) -> int:
    rows = [_entry_row(entry) for entry in store.entries()]
    if not rows:
        print(f"run store {store.root} is empty")
        return 0
    print(format_table(rows, title=f"run store {store.root} "
                                   f"(schema v{RESULT_SCHEMA_VERSION})"))
    print(f"\n{len(rows)} committed point(s)")
    return 0


def _metrics_row(entry: dict) -> dict:
    key = entry.get("key") or {}
    meta = entry.get("meta") or {}
    protocol = key.get("protocol") or {}
    trials = meta.get("trials", key.get("trials", "-"))
    interactions = _number(meta.get("interactions"))
    wall = _number(meta.get("wall_seconds"))
    if interactions is not None and wall:
        throughput = f"{interactions / wall:.3g}"
    else:
        throughput = "-"
    return {
        "fingerprint": entry.get("fingerprint", "")[:12],
        "protocol": protocol.get("kind", "-") if isinstance(protocol, dict)
        else str(protocol),
        "n": key.get("n", "-"),
        "engine": meta.get("engine_resolved", key.get("engine", "-")),
        "trials": trials,
        "interactions": "-" if interactions is None else interactions,
        "interactions_per_s": throughput,
        "wall_seconds": "-" if wall is None else wall,
    }


def _print_metrics(entries: list[dict]) -> None:
    rows = [_metrics_row(entry) for entry in entries]
    if not rows:
        print("  metrics: no committed points")
        return
    print()
    print(format_table(rows, title="per-point compute metrics"))
    counted = [row for row in rows if row["interactions"] != "-"]
    total_interactions = sum(row["interactions"] for row in counted)
    total_wall = sum(row["wall_seconds"] for row in counted
                     if row["wall_seconds"] != "-")
    print(f"\n  totals: {total_interactions} interaction(s) over "
          f"{len(counted)}/{len(rows)} point(s) with metrics, "
          f"{total_wall:.3f}s compute wall time")
    if len(counted) < len(rows):
        print("  (points without metrics predate the telemetry meta "
              "or were computed by opaque thunks)")


def _print_service_state(store: RunStore) -> None:
    """Queued submissions and in-flight points (store introspection)."""
    queued = store.pending_submissions()
    in_flight = store.in_flight()
    committed = {record["point"] for record in queued
                 if record.get("point") in store}
    print(f"  service queue: {len(queued)} pending submission(s)"
          + (f" ({len(committed)} already committed — served on "
             f"restart without recomputation)" if committed else ""))
    if in_flight:
        print()
        print(format_table(
            [{"sweep": row["sweep"], "point": row["point"][:12],
              "checkpointed_chunks": row["chunks"],
              "checkpointed_trials": row["trials"]}
             for row in in_flight],
            title="in-flight points (chunk checkpoints, resumable)"))


def cmd_status(store: RunStore, *, metrics: bool = False) -> int:
    objects = list(store.entries())
    total_bytes = sum(path.stat().st_size
                      for path in store.objects_dir.glob("*/*.json")
                      ) if store.objects_dir.is_dir() else 0
    print(f"run store {store.root}")
    print(f"  objects: {len(objects)} committed point(s), "
          f"{total_bytes} bytes")
    if metrics:
        _print_metrics(objects)
    _print_service_state(store)
    sweeps = list(store.sweeps())
    if not sweeps:
        print("  journals: none (no sweep in flight)")
        return 0
    rows = []
    for name, journals in sweeps:
        # Per-worker journal files of a distributed sweep merge into
        # one record stream — a second writer never shadows the first.
        records = []
        for journal in journals:
            records.extend(journal.replay())
        pending = chunk_map(records)
        rows.append({
            "sweep": name,
            "files": len(journals),
            "records": len(records),
            "committed_points": len(committed_points(records)),
            "points_in_flight": len(pending),
            "checkpointed_chunks": sum(len(chunks)
                                       for chunks in pending.values()),
            "bytes": sum(journal.path.stat().st_size
                         for journal in journals),
        })
    print()
    print(format_table(rows, title="journals (resumable with --resume)"))
    return 0


def cmd_workers(store: RunStore) -> int:
    """The distributed-sweep fleet view: leases + worker statuses."""
    print(f"run store {store.root}")
    leases = LeaseManager(store.leases_dir, "observer").live()
    if leases:
        print()
        print(format_table(
            [{"point": lease.get("point", "?")[:12],
              "worker": lease.get("worker", "?"),
              "age_seconds": round(lease.get("age", 0.0), 1),
              "stale": lease.get("stale", False)}
             for lease in leases],
            title="live leases (stale ones are reclaimable)"))
    else:
        print("  leases: none held")
    statuses = read_worker_statuses(store.workers_dir)
    if statuses:
        rows = []
        for status in statuses:
            counters = status.get("counters", {})
            elapsed = status.get("elapsed", 0.0) or 0.0
            interactions = counters.get("interactions", 0)
            rows.append({
                "worker": status.get("worker", "?"),
                "sweep": status.get("sweep", "?"),
                "state": status.get("state", "?"),
                "computed": counters.get("computed", 0),
                "cached": counters.get("cached", 0),
                "pending": status.get("pending_points", "-"),
                "reclaimed": counters.get("lease_reclaims", 0),
                "interactions_per_s": (f"{interactions / elapsed:.3g}"
                                       if elapsed > 0 else "-"),
                "elapsed_s": round(elapsed, 1),
            })
        print()
        print(format_table(rows, title="sweep workers (status files; "
                                       "gc removes finished ones)"))
    else:
        print("  workers: no status files")
    if store.manifests_dir.is_dir():
        for path in sorted(store.manifests_dir.glob("*.json")):
            manifest = store.load_manifest(path.stem) or []
            outstanding = sum(
                1 for entry in manifest
                if isinstance(entry, dict)
                and entry.get("point") not in store)
            print(f"  manifest {path.stem}: {len(manifest)} point(s), "
                  f"{outstanding} not yet committed")
    return 0


def cmd_gc(store: RunStore, drop_all: bool, dry_run: bool = False) -> int:
    removed = store.gc(drop_all=drop_all, dry_run=dry_run)
    scope = "everything" if drop_all else "dead state"
    verb = "would remove" if dry_run else "removed"
    print(f"gc({scope}) under {store.root}: "
          f"{verb} {removed['journals']} journal(s), "
          f"{removed['objects']} object(s), "
          f"{removed['temp_files']} temp file(s), "
          f"{removed.get('worker_files', 0)} worker file(s)")
    if dry_run:
        for path in removed["would_remove"]:
            print(f"  would remove {path}")
        print("  (dry run: nothing was deleted)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro runs",
        description="Inspect and maintain the experiment run store.")
    parser.add_argument("action",
                        choices=("list", "status", "workers", "gc"),
                        help="what to do with the store")
    parser.add_argument("--output-dir", default=None,
                        help="results directory owning the store "
                             "(default: results/ or $REPRO_OUTPUT_DIR)")
    parser.add_argument("--all", action="store_true",
                        help="gc only: wipe the entire store, including "
                             "valid cache entries")
    parser.add_argument("--dry-run", action="store_true",
                        help="gc only: print what would be deleted and "
                             "delete nothing")
    parser.add_argument("--metrics", action="store_true",
                        help="status only: add per-point compute metrics "
                             "(trials, interactions, throughput)")
    args = parser.parse_args(argv)

    store = RunStore.for_output_dir(args.output_dir)
    if args.action == "list":
        return cmd_list(store)
    if args.action == "status":
        return cmd_status(store, metrics=args.metrics)
    if args.action == "workers":
        return cmd_workers(store)
    return cmd_gc(store, drop_all=args.all, dry_run=args.dry_run)


if __name__ == "__main__":
    raise SystemExit(main())
