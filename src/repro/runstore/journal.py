"""Append-only per-sweep journals.

The store commits whole points; the journal is the layer below it,
checkpointing *partial* points at trial-chunk boundaries so a killed
process loses at most one chunk of work.  Records are single JSON
lines appended with flush+fsync; a crash can only tear the final line,
and :meth:`Journal.replay` stops at the first torn or unparsable line
— every replayed prefix is consistent by construction.

Record vocabulary (one JSON object per line):

``{"event": "begin", "sweep": name, "points": N}``
    Written when an orchestrated sweep starts (repeated on resume).
``{"event": "chunk", "point": fp, "index": k, "results": [...]}``
    One completed trial chunk of point ``fp`` (serialized
    :class:`~repro.sim.results.RunResult` dicts).
``{"event": "point", "point": fp}``
    Point ``fp`` was committed to the store; its chunk records are
    dead weight from here on.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["Journal", "chunk_map", "committed_points"]


class Journal:
    """One append-only JSONL file, replayable to a consistent prefix."""

    def __init__(self, path):
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def append(self, record: dict) -> None:
        """Append one record durably (flush + fsync)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    def replay(self) -> list[dict]:
        """All records up to the first torn or corrupt line."""
        if not self.path.exists():
            return []
        records: list[dict] = []
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                if not line.endswith("\n"):
                    break  # torn tail write from a crash mid-append
                try:
                    record = json.loads(line)
                except ValueError:
                    break
                if not isinstance(record, dict):
                    break
                records.append(record)
        return records

    def clear(self) -> None:
        """Remove the journal file (sweep finished or restart fresh)."""
        self.path.unlink(missing_ok=True)


def chunk_map(records) -> dict[str, dict[int, list]]:
    """``point fingerprint -> {chunk index -> serialized results}``.

    Chunks of points that were later committed (``"point"`` events)
    are dropped — the store already holds their final row.
    """
    chunks: dict[str, dict[int, list]] = {}
    for record in records:
        if record.get("event") == "chunk":
            point = chunks.setdefault(record["point"], {})
            point[int(record["index"])] = record["results"]
        elif record.get("event") == "point":
            chunks.pop(record["point"], None)
    return chunks


def committed_points(records) -> set[str]:
    """Fingerprints recorded as committed to the store."""
    return {record["point"] for record in records
            if record.get("event") == "point"}
