"""Resumable, crash-safe experiment orchestration with a result cache.

Long sweeps (hundreds of ``(protocol, n, eps, s)`` points, each worth
minutes of simulation) must survive crashes, ``SIGINT``, and parameter
tweaks without recomputing what is already known.  This package gives
every sweep point a canonical content-address and makes the experiment
harness write-once:

* :mod:`repro.runstore.fingerprint` — the stable hash of a point's
  full defining inputs (protocol + params, n, eps, trials, seed,
  engine, result-schema version);
* :mod:`repro.runstore.store` — the on-disk content-addressed store
  under ``<output-dir>/.runstore/`` with atomic write-then-rename
  commits;
* :mod:`repro.runstore.journal` — the append-only per-sweep JSONL
  journal that checkpoints partially computed points at deterministic
  trial-chunk boundaries;
* :mod:`repro.runstore.orchestrator` — the resumable sweep driver the
  experiment modules run their points through;
* :mod:`repro.runstore.distributed` — the lease layer that lets N
  worker processes (``--workers N`` / ``python -m repro workers
  start``) drain one sweep cooperatively with zero duplicate
  simulation;
* :mod:`repro.runstore.cli` — ``python -m repro runs
  list|status|workers|gc``.

The contract that makes resumption safe: a point's simulation output
is a pure function of its fingerprint key, and chunk boundaries are
derived only from the trial count — so a resumed sweep is bit-identical
to an uninterrupted one.
"""

from .distributed import (
    DEFAULT_LEASE_TTL,
    LeaseLost,
    LeaseManager,
    WorkerStatus,
    lease_ttl_from_env,
    new_worker_id,
    read_worker_statuses,
)
from .fingerprint import (
    RESULT_SCHEMA_VERSION,
    canonical_json,
    fingerprint,
    majority_point_key,
    point_key,
)
from .journal import Journal
from .orchestrator import Orchestrator
from .store import RunStore

__all__ = [
    "DEFAULT_LEASE_TTL",
    "RESULT_SCHEMA_VERSION",
    "canonical_json",
    "fingerprint",
    "lease_ttl_from_env",
    "majority_point_key",
    "new_worker_id",
    "point_key",
    "read_worker_statuses",
    "Journal",
    "LeaseLost",
    "LeaseManager",
    "Orchestrator",
    "RunStore",
    "WorkerStatus",
]
