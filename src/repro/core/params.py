"""Parameter handling for the AVC protocol.

The protocol of the paper is parameterized by

* ``m`` — an odd integer ``>= 1``: initial (maximum) weight; strong
  states encode the odd values ``{-m, ..., -3} u {3, ..., m}``;
* ``d`` — an integer ``>= 1``: the number of graded levels of the
  weight-1 intermediate states ``±1_1 ... ±1_d``.

The total number of states is ``s = m + 2d + 1``.  The analysis in the
paper uses ``d = Theta(log m log n)``; the experiments (Section 6 /
Appendix D) use ``d = 1``, and so do ours by default.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import InvalidParameterError

__all__ = ["AVCParams"]


@dataclass(frozen=True, slots=True)
class AVCParams:
    """Validated AVC parameters ``(m, d)``."""

    m: int
    d: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.m, int) or isinstance(self.m, bool):
            raise InvalidParameterError(f"m must be an int, got {self.m!r}")
        if not isinstance(self.d, int) or isinstance(self.d, bool):
            raise InvalidParameterError(f"d must be an int, got {self.d!r}")
        if self.m < 1 or self.m % 2 == 0:
            raise InvalidParameterError(
                f"m must be an odd integer >= 1, got {self.m}")
        if self.d < 1:
            raise InvalidParameterError(f"d must be >= 1, got {self.d}")

    @property
    def num_states(self) -> int:
        """Total number of protocol states, ``s = m + 2d + 1``."""
        return self.m + 2 * self.d + 1

    @classmethod
    def from_num_states(cls, s: int, d: int = 1) -> "AVCParams":
        """Parameters with exactly ``s`` states at the given ``d``.

        Solves ``s = m + 2d + 1`` for ``m``; raises when no odd
        ``m >= 1`` fits.  ``s = 4, d = 1`` gives ``m = 1`` — the
        four-state protocol.
        """
        m = s - 2 * d - 1
        if m < 1 or m % 2 == 0:
            raise InvalidParameterError(
                f"no valid AVC parameters with s={s} states and d={d} "
                f"(implied m={m} must be odd and >= 1)")
        return cls(m=m, d=d)

    @classmethod
    def theory_setting(cls, n: int, m: int | None = None) -> "AVCParams":
        """The parameter setting used by the paper's analysis.

        Theorem 4.1 requires ``log n log log n <= m <= n`` and sets
        ``d = 1000 log m log n`` (natural logs here, as a convention;
        the theorem is insensitive to the base up to constants).  When
        ``m`` is omitted, the smallest admissible odd ``m`` is chosen.
        ``d`` is computed with the theorem's constant, which makes the
        state count large — this classmethod exists to exercise the
        analyzed regime, not for fast experiments.
        """
        if n < 3:
            raise InvalidParameterError(f"n must be >= 3, got {n}")
        log_n = math.log(n)
        if m is None:
            lower = max(1.0, log_n * math.log(max(math.e, log_n)))
            m = int(math.ceil(lower))
            if m % 2 == 0:
                m += 1
        if m > n:
            raise InvalidParameterError(
                f"theory setting requires m <= n, got m={m}, n={n}")
        d = max(1, int(math.ceil(1000 * math.log(max(2, m)) * log_n)))
        return cls(m=m, d=d)
