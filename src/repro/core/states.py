"""State space of the AVC protocol (Figure 1, lines 1-10 of the paper).

Every AVC state carries a *sign* (+1 / -1) and a *weight*:

* **strong** states: weight an odd integer in ``[3, m]``,
* **intermediate** states ``±1_j`` (``1 <= j <= d``): weight 1, with a
  *level* ``j`` grading how close the state is to neutralization,
* **weak** states ``±0``: weight 0.

The *value* of a state is ``sign * weight``; the total value summed
over all agents is invariant under every AVC interaction
(Invariant 4.3), which is what makes the protocol exact.

This module provides the immutable :class:`AVCState`, the canonical
enumeration of the state space for given parameters, and the auxiliary
functions ``phi`` / ``round_down`` / ``round_up`` / ``shift_to_zero`` /
``sign_to_zero`` exactly as defined in the paper's pseudocode.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InvalidParameterError, InvalidStateError
from .params import AVCParams

__all__ = [
    "AVCState",
    "enumerate_states",
    "phi",
    "round_down",
    "round_up",
    "shift_to_zero",
    "sign_to_zero",
    "strong_state",
    "intermediate_state",
    "weak_state",
]


@dataclass(frozen=True, slots=True)
class AVCState:
    """One AVC state: a sign, a weight, and (for weight 1) a level.

    ``level`` is the intermediate grade ``j`` of ``±1_j`` and is 0 for
    strong and weak states.  Instances are immutable and hashable, so
    they can be used directly as protocol states.
    """

    sign: int
    weight: int
    level: int = 0

    def __post_init__(self) -> None:
        if self.sign not in (1, -1):
            raise InvalidStateError(f"sign must be +1 or -1, got {self.sign}")
        if self.weight < 0:
            raise InvalidStateError(f"weight must be >= 0, got {self.weight}")
        if self.weight == 1:
            if self.level < 1:
                raise InvalidStateError(
                    "intermediate states (weight 1) need a level >= 1")
        else:
            if self.level != 0:
                raise InvalidStateError(
                    f"state with weight {self.weight} cannot carry a level")
            if self.weight > 1 and self.weight % 2 == 0:
                raise InvalidStateError(
                    f"strong weights must be odd, got {self.weight}")

    @property
    def value(self) -> int:
        """The signed value ``sign * weight`` encoded by this state."""
        return self.sign * self.weight

    @property
    def is_strong(self) -> bool:
        """Weight strictly greater than 1."""
        return self.weight > 1

    @property
    def is_intermediate(self) -> bool:
        """Weight exactly 1 (a graded ``±1_j`` state)."""
        return self.weight == 1

    @property
    def is_weak(self) -> bool:
        """Weight 0 (a ``±0`` state)."""
        return self.weight == 0

    def __str__(self) -> str:
        sign_char = "+" if self.sign > 0 else "-"
        if self.is_intermediate:
            return f"{sign_char}1_{self.level}"
        return f"{sign_char}{self.weight}"

    def __repr__(self) -> str:
        return f"AVCState({self!s})"


def strong_state(value: int) -> AVCState:
    """The strong state encoding the odd value ``value`` (``|value| >= 3``)."""
    if abs(value) < 3 or value % 2 == 0:
        raise InvalidStateError(
            f"strong states encode odd values with |value| >= 3, got {value}")
    return AVCState(sign=1 if value > 0 else -1, weight=abs(value))


def intermediate_state(sign: int, level: int) -> AVCState:
    """The intermediate state ``±1_level``."""
    return AVCState(sign=sign, weight=1, level=level)


def weak_state(sign: int) -> AVCState:
    """The weak state ``+0`` or ``-0``."""
    return AVCState(sign=sign, weight=0)


def enumerate_states(params: AVCParams) -> tuple[AVCState, ...]:
    """Canonical ordering of the ``m + 2d + 1`` states for ``params``.

    Order: strong negatives ``-m .. -3`` ascending by value, then
    ``-1_1 .. -1_d``, then ``-0``, ``+0``, then ``+1_d .. +1_1``
    (mirroring the negative side), then strong positives ``3 .. m``.
    The ordering is monotone in value, which makes count-vector dumps
    easy to read and lets tests assert symmetry by reversal.
    """
    m, d = params.m, params.d
    states: list[AVCState] = []
    for value in range(-m, -1, 2):
        states.append(strong_state(value))
    for level in range(1, d + 1):
        states.append(intermediate_state(-1, level))
    states.append(weak_state(-1))
    states.append(weak_state(1))
    for level in range(d, 0, -1):
        states.append(intermediate_state(1, level))
    for value in range(3, m + 1, 2):
        states.append(strong_state(value))
    if len(states) != params.num_states:
        raise InvalidParameterError(
            f"state enumeration produced {len(states)} states, "
            f"expected {params.num_states}")
    return tuple(states)


# ----------------------------------------------------------------------
# Auxiliary procedures from Figure 1 (lines 4-10)
# ----------------------------------------------------------------------

def phi(value: int) -> AVCState | int:
    """Map the values ``±1`` to the level-1 intermediate states.

    ``phi(x) = -1_1 if x = -1; 1_1 if x = 1; x otherwise`` — other
    values are returned unchanged (as plain integers) for further
    interpretation by the caller.
    """
    if value == 1:
        return intermediate_state(1, 1)
    if value == -1:
        return intermediate_state(-1, 1)
    return value


def _as_state(value_or_state: AVCState | int) -> AVCState:
    """Interpret a ``phi`` result as a state (integers become strong/weak)."""
    if isinstance(value_or_state, AVCState):
        return value_or_state
    value = value_or_state
    if value == 0:
        # Averaging never produces 0 directly (odd + odd is even, and
        # the rounded halves are odd); defend anyway.
        raise InvalidStateError("rounding produced the ambiguous value 0")
    return strong_state(value)


def round_down(value: int) -> AVCState:
    """``R_down(k)``: round to the next odd value below, then ``phi``."""
    if value % 2 == 0:
        value -= 1
    return _as_state(phi(value))


def round_up(value: int) -> AVCState:
    """``R_up(k)``: round to the next odd value above, then ``phi``."""
    if value % 2 == 0:
        value += 1
    return _as_state(phi(value))


def shift_to_zero(state: AVCState, d: int) -> AVCState:
    """``Shift-to-Zero``: push an intermediate state one level down.

    ``±1_j`` becomes ``±1_{j+1}`` for ``j < d``; every other state
    (including ``±1_d``) is returned unchanged.
    """
    if state.is_intermediate and state.level < d:
        return intermediate_state(state.sign, state.level + 1)
    return state


def sign_to_zero(state: AVCState) -> AVCState:
    """``Sign-to-Zero``: the weak state carrying ``state``'s sign."""
    return weak_state(state.sign)
