"""Vectorized (numpy) kernel for the AVC transition function.

The batch engine applies the transition to thousands of agent pairs at
once.  For protocols with small state spaces it fancy-indexes a dense
transition table, but AVC with ``s ~ n`` states would need an
``s x s`` table — far too large.  Instead this kernel evaluates
Figure 1's arithmetic directly on numpy arrays.

Internal representation per agent (two ``int64`` arrays):

* ``value`` — the signed value: ``±m .. ±3`` for strong states, ``±1``
  for intermediates, ``0`` for weak states;
* ``aux`` — disambiguation: the level ``1..d`` for intermediates, the
  sign ``±1`` for weak states, ``0`` for strong states.

The kernel's correctness is established by an exhaustive comparison
against :meth:`repro.core.avc.AVCProtocol.transition` over all state
pairs for several parameter settings (see
``tests/core/test_vectorized.py``).
"""

from __future__ import annotations

import numpy as np

from .avc import AVCProtocol

__all__ = ["AVCBatchKernel"]


class AVCBatchKernel:
    """Apply the AVC transition to arrays of state indices."""

    def __init__(self, protocol: AVCProtocol):
        self.protocol = protocol
        m, d = protocol.m, protocol.d
        self._m = m
        self._d = d

        s = protocol.num_states
        values = np.empty(s, dtype=np.int64)
        auxes = np.empty(s, dtype=np.int64)
        for index, state in enumerate(protocol.states):
            values[index] = state.value
            if state.is_intermediate:
                auxes[index] = state.level
            elif state.is_weak:
                auxes[index] = state.sign
            else:
                auxes[index] = 0
        self._values = values
        self._auxes = auxes

        # Inverse map: (value + m, aux + 1) -> state index.
        encode = np.full((2 * m + 1, d + 2), -1, dtype=np.int64)
        encode[values + m, auxes + 1] = np.arange(s, dtype=np.int64)
        self._encode = encode

    def __call__(self, index_x: np.ndarray,
                 index_y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Transition state-index arrays ``(x, y)`` pairwise."""
        d = self._d
        value_x = self._values[index_x]
        aux_x = self._auxes[index_x]
        value_y = self._values[index_y]
        aux_y = self._auxes[index_y]

        weight_x = np.abs(value_x)
        weight_y = np.abs(value_y)
        new_value_x = value_x.copy()
        new_aux_x = aux_x.copy()
        new_value_y = value_y.copy()
        new_aux_y = aux_y.copy()

        remaining = np.ones(value_x.shape, dtype=bool)

        # Rule 1: strong meets non-zero -> average, rounded outward to
        # the surrounding odd values (R_down for x, R_up for y).
        rule1 = (weight_x > 0) & (weight_y > 0) \
            & ((weight_x > 1) | (weight_y > 1))
        if rule1.any():
            total = value_x[rule1] + value_y[rule1]
            average = total >> 1  # total is even; >> floors correctly
            is_even = (average & 1) == 0
            low = np.where(is_even, average - 1, average)
            high = np.where(is_even, average + 1, average)
            new_value_x[rule1] = low
            new_value_y[rule1] = high
            new_aux_x[rule1] = np.where(np.abs(low) == 1, 1, 0)
            new_aux_y[rule1] = np.where(np.abs(high) == 1, 1, 0)
        remaining &= ~rule1

        # Rule 2: exactly one weak agent -> the weak agent adopts the
        # partner's sign; an intermediate partner drops one level.
        rule2 = remaining & ((weight_x == 0) != (weight_y == 0))
        if rule2.any():
            x_is_weak = rule2 & (weight_x == 0)
            y_is_weak = rule2 & (weight_y == 0)
            new_aux_x[x_is_weak] = np.sign(value_y[x_is_weak])
            new_aux_y[y_is_weak] = np.sign(value_x[y_is_weak])
            x_shifts = y_is_weak & (weight_x == 1) & (aux_x < d)
            y_shifts = x_is_weak & (weight_y == 1) & (aux_y < d)
            new_aux_x[x_shifts] = aux_x[x_shifts] + 1
            new_aux_y[y_shifts] = aux_y[y_shifts] + 1
        remaining &= ~rule2

        # Rules 3 and 4 both need two weight-1 agents.
        both_one = remaining & (weight_x == 1) & (weight_y == 1)

        # Rule 3: opposite signs with a level-d participant -> both
        # neutralize to the weak state of their own sign.
        rule3 = both_one & (value_x != value_y) \
            & ((aux_x == d) | (aux_y == d))
        if rule3.any():
            new_aux_x[rule3] = value_x[rule3]  # sign of a ±1 state
            new_aux_y[rule3] = value_y[rule3]
            new_value_x[rule3] = 0
            new_value_y[rule3] = 0

        # Rule 4: any other pair of weight-1 agents drop one level each
        # (Shift-to-Zero); weak-weak pairs are unchanged.
        rule4 = both_one & ~rule3
        if rule4.any():
            x_shifts = rule4 & (aux_x < d)
            y_shifts = rule4 & (aux_y < d)
            new_aux_x[x_shifts] = aux_x[x_shifts] + 1
            new_aux_y[y_shifts] = aux_y[y_shifts] + 1

        m = self._m
        encode = self._encode
        return (encode[new_value_x + m, new_aux_x + 1],
                encode[new_value_y + m, new_aux_y + 1])
