"""The Average-and-Conquer (AVC) protocol — Figure 1 of the paper.

AVC solves *exact* majority: agents start at value ``+m`` (input A) or
``-m`` (input B) and repeatedly

1. **average**: whenever an agent of weight ``> 1`` meets an agent of
   weight ``> 0``, both move to the average of their values, rounded
   outward to odd integers (``R_down`` / ``R_up``);
2. **downgrade**: a weight-1 agent drifts through the ``d`` graded
   intermediate levels ``±1_1 .. ±1_d``;
3. **neutralize**: two opposite-sign weight-1 agents, one of them at
   level ``d``, both drop to weak ``±0`` states;
4. **follow**: a weak agent adopts the sign of any non-weak partner.

Every rule preserves the total signed value (Invariant 4.3), which is
``eps * m * n`` initially — so the initial minority sign can never take
over the whole population, and the protocol has zero error
probability.  With ``s = m + 2d + 1`` states the expected parallel
convergence time is ``O(log n / (s * eps) + log n log s)``
(Theorem 4.1): poly-logarithmic whenever ``s >= 1/eps``.

The transition implemented here follows the paper's pseudocode
line-by-line; the one *presentation* choice we make is in rule 3, where
the pseudocode assigns the literal pair ``(-0, +0)`` and we assign each
agent the weak state of *its own* sign — the resulting unordered pair
(one ``+0``, one ``-0``) is identical, so the induced Markov chain on
configurations is exactly the paper's.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..errors import InvalidStateError
from ..protocols.base import MAJORITY_A, MAJORITY_B, MajorityProtocol
from .params import AVCParams
from .states import (
    AVCState,
    enumerate_states,
    phi,
    round_down,
    round_up,
    shift_to_zero,
    sign_to_zero,
    strong_state,
)

__all__ = ["AVCProtocol"]


class AVCProtocol(MajorityProtocol):
    """Average-and-Conquer exact majority with parameters ``(m, d)``.

    ``AVCProtocol(m=1, d=1)`` has four states and coincides with the
    four-state protocol of [DV12, MNRS14]; larger ``m`` buys speed.
    Use :meth:`with_num_states` to pick ``m`` from a target state
    count ``s`` (the paper's experiments sweep ``s``).
    """

    unanimity_settles = True

    def __init__(self, m: int = 1, d: int = 1, *,
                 params: AVCParams | None = None):
        self.params = params if params is not None else AVCParams(m=m, d=d)
        self.name = f"avc(m={self.params.m},d={self.params.d})"

    @classmethod
    def with_num_states(cls, s: int, d: int = 1) -> "AVCProtocol":
        """AVC with exactly ``s`` states (``m = s - 2d - 1``)."""
        return cls(params=AVCParams.from_num_states(s, d))

    @property
    def m(self) -> int:
        """Maximum weight (initial value magnitude)."""
        return self.params.m

    @property
    def d(self) -> int:
        """Number of graded intermediate levels."""
        return self.params.d

    def enumerate_states(self) -> tuple[AVCState, ...]:
        return enumerate_states(self.params)

    def initial_state(self, symbol: str) -> AVCState:
        if symbol == self.INPUT_A:
            value = self.params.m
        elif symbol == self.INPUT_B:
            value = -self.params.m
        else:
            raise ValueError(f"unknown input symbol {symbol!r}")
        mapped = phi(value)
        if isinstance(mapped, AVCState):
            return mapped  # m == 1: inputs start in the ±1_1 states
        return strong_state(mapped)

    # ------------------------------------------------------------------
    # The update rule (Figure 1, lines 11-19)
    # ------------------------------------------------------------------

    def transition(self, x: AVCState, y: AVCState) -> tuple[AVCState, AVCState]:
        d = self.params.d
        weight_x, weight_y = x.weight, y.weight

        # Rule 1 (line 11): strong meets non-zero -> average the values.
        # Both values are odd, so their sum is even and the average is
        # an exact integer; R_down / R_up split an even average into
        # the surrounding odd pair and map ±1 to the ±1_1 states.
        if weight_x > 0 and weight_y > 0 and (weight_x > 1 or weight_y > 1):
            average = (x.value + y.value) // 2
            return round_down(average), round_up(average)

        # Rule 2 (lines 12-14): zero meets non-zero -> the weak agent
        # adopts the partner's sign; an intermediate partner pays one
        # level (Shift-to-Zero), a strong partner is unchanged.
        if (weight_x == 0) != (weight_y == 0):
            if weight_x != 0:
                return shift_to_zero(x, d), sign_to_zero(x)
            return sign_to_zero(y), shift_to_zero(y, d)

        # Rule 3 (lines 15-17): two opposite-sign weight-1 agents, at
        # least one at the last level d -> both neutralize to weak
        # states (one +0, one -0).
        if (weight_x == 1 and weight_y == 1 and x.sign != y.sign
                and (x.level == d or y.level == d)):
            return sign_to_zero(x), sign_to_zero(y)

        # Rule 4 (lines 18-19): remaining cases — two weight-1 agents
        # below level d (opposite or equal signs) each drop a level;
        # two weak agents are unchanged (Shift-to-Zero is the identity
        # on them).
        return shift_to_zero(x, d), shift_to_zero(y, d)

    def _build_batch_kernel(self):
        """Arithmetic numpy kernel (no ``s x s`` table needed)."""
        from .vectorized import AVCBatchKernel

        return AVCBatchKernel(self)

    # ------------------------------------------------------------------
    # Outputs and convergence
    # ------------------------------------------------------------------

    def output(self, state: AVCState):
        return MAJORITY_A if state.sign > 0 else MAJORITY_B

    def is_settled(self, counts: Mapping[AVCState, int]) -> bool:
        """Settled iff every agent carries the same sign.

        Lemma A.1: once all signs agree they agree in every reachable
        configuration — rule 1 averages two same-sign values to a
        nonzero value of that sign, rules 2-4 only copy or keep signs,
        and neutralization (rule 3) needs opposite signs.  While both
        signs are present the outputs disagree, so the predicate is
        exact.
        """
        seen_sign = 0
        for state, count in counts.items():
            if not count:
                continue
            if seen_sign == 0:
                seen_sign = state.sign
            elif state.sign != seen_sign:
                return False
        return seen_sign != 0

    # ------------------------------------------------------------------
    # Invariant helpers (used by tests and analysis)
    # ------------------------------------------------------------------

    def total_value(self, counts: Mapping[AVCState, int]) -> int:
        """The conserved quantity of Invariant 4.3: sum of all values."""
        return sum(state.value * count for state, count in counts.items())

    def state_from_value(self, value: int, level: int = 1) -> AVCState:
        """The state encoding ``value`` (intermediates at ``level``).

        Weak states are not addressable by value (both encode 0); use
        :func:`repro.core.states.weak_state` for those.
        """
        if value == 0:
            raise InvalidStateError(
                "value 0 is ambiguous (+0 vs -0); use weak_state()")
        if abs(value) == 1:
            return AVCState(sign=value, weight=1, level=level)
        return strong_state(value)
