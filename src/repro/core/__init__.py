"""The paper's primary contribution: the Average-and-Conquer protocol."""

from .avc import AVCProtocol
from .params import AVCParams
from .states import (
    AVCState,
    enumerate_states,
    intermediate_state,
    strong_state,
    weak_state,
)

__all__ = [
    "AVCProtocol",
    "AVCParams",
    "AVCState",
    "enumerate_states",
    "strong_state",
    "intermediate_state",
    "weak_state",
]
