"""Declarative fault models for every simulation engine.

The paper's guarantees hold in the clean model: a uniform random
scheduler, a fixed population, and agents that never misbehave.
Follow-up work (space-optimal majority, stable exact majority) judges
protocols by how they degrade under perturbation, and AVC's Lemma A.1
— convergence to the sign of the conserved total from *arbitrary*
configurations — is exactly a self-stabilization claim.  This module
makes such perturbations first-class:

* :class:`FaultSpec` — a frozen, fingerprintable description of the
  fault model, attached to a :class:`~repro.sim.run.RunSpec` via its
  ``faults`` field.  A spec with every probability zero and no
  adversarial scheduler is *null* and behaves exactly like ``None``
  (clean runs stay bit-identical and keep their cache fingerprints).
* :class:`FaultRuntime` — the per-run injector the engines drive;
  it resolves the protocol-dependent pieces (targeted-corruption and
  join states) once and carries the injection counters.
* :func:`corrupt_counts` — the one-shot adversarial rewrite used by
  the Lemma A.1 tests: move agents between states by hand.

Fault taxonomy (see ``docs/faults.md`` for the full semantics):

=============  =====================================================
class          per-interaction behaviour while the fault is *armed*
=============  =====================================================
``flip``       one uniformly random agent's state is rewritten —
               uniformly random (``flip_mode="uniform"``) or to the
               minority input state (``"targeted"``, the
               majority-flipping adversary)
``crash``      one uniformly random agent leaves the population
``join``       a fresh agent joins in an input state
``drop``       the scheduled meeting silently does not happen
``oneway``     only the initiator applies the transition (the
               responder keeps its state — a one-way message)
``byzantine``  a corruption budget of ``f`` agents lie: a meeting
               participant is byzantine with the hypergeometric
               probability of belonging to the corrupted set, presents
               a lie state to its partner, and never updates its own
               state (``byzantine_mode="stubborn"`` lies with the
               fixed minority input state; ``"adaptive"`` lies with
               the input state of whichever opinion currently trails —
               the majority-flipping adversary)
=============  =====================================================

Each class fires independently with its own Bernoulli probability per
scheduled interaction, and only while the interaction clock is below
``horizon`` (``None`` arms the faults for the whole run).  The
canonical per-tick order — identical in every engine — is interaction
(subject to drop, then byzantine message corruption, then one-way),
then flip, then crash, then join.

Byzantine semantics: the adversary controls a *budget* of ``f`` out of
``n`` agents.  Agents on the complete graph are exchangeable, so the
corrupted set is equivalent to possessing a uniformly random subset:
at each scheduled meeting the initiator is byzantine with probability
``f/n`` and, given that verdict, the responder with probability
``(f - [initiator byzantine]) / (n - 1)`` — exactly the hypergeometric
law of drawing the ordered pair from a population containing ``f``
liars.  A byzantine participant presents the lie state to its partner
(the honest partner applies the transition against the lie) and keeps
its own tracked state, so the count vector stays conserved and every
engine — count, agent, token ensemble — samples the identical chain.
Byzantine corruption requires a fixed population (no churn, which
would make ``f/n`` ill-defined) and, because the lie states are
opinion-targeted, a majority protocol.

Convergence semantics: faults that can *unsettle* a configuration
(flips, joins) hold the run in the arena until the horizon passes —
a momentary unanimity inside the fault window does not end the run,
so reported settling times measure genuine recovery.  With an
unbounded horizon the first unanimity instant is reported instead
(the run would otherwise never terminate).  Faults that cannot
unsettle (crash, drop, one-way) leave settling absorbing, exactly as
in the clean model.

Adversarial schedulers (``scheduler="stubborn"`` / ``"clustered"``)
replace the uniform pair sampler with the corresponding
:class:`~repro.sim.schedule.PairSampler`; they require the agent
engine and a fixed population (no churn).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from collections.abc import Mapping

import numpy as np

from .errors import InvalidParameterError
from .protocols.base import MAJORITY_A, MajorityProtocol, PopulationProtocol

__all__ = ["FaultSpec", "FaultRuntime", "corrupt_counts"]

_FLIP_MODES = ("uniform", "targeted")
_SCHEDULERS = ("stubborn", "clustered")
_BYZANTINE_MODES = ("stubborn", "adaptive")

#: Fault-event classes, in canonical order; counter keys everywhere.
FAULT_CLASSES = ("flips", "crashes", "joins", "drops", "oneway")

#: Extra counter keys present only on byzantine-faulted runs.
BYZANTINE_CLASSES = ("byzantine_lies", "byzantine_meetings")


@dataclass(frozen=True)
class FaultSpec:
    """A declarative fault model for one simulation batch.

    All probabilities are per scheduled interaction; every class fires
    independently.  The default instance is *null* — attaching it to a
    spec is exactly equivalent to ``faults=None``.

    Parameters
    ----------
    flip_prob / flip_mode:
        Transient state corruption: with probability ``flip_prob`` a
        uniformly random agent is rewritten after the interaction.
        ``"uniform"`` picks the new state uniformly over the whole
        state space; ``"targeted"`` writes the *minority* input state
        (the majority-flipping adversary — requires a majority input
        with a defined expected output).
    crash_prob / join_prob:
        Population churn: an agent leaves (uniformly random victim) /
        a fresh agent joins in a uniformly chosen input state.
        Crashes never shrink the population below ``min_population``.
    drop_prob / oneway_prob:
        Interaction faults: the meeting is dropped entirely, or only
        the initiator applies the transition (checked in that order;
        a dropped meeting cannot also be one-way).
    byzantine_f / byzantine_mode:
        Byzantine corruption budget: ``f`` of the ``n`` agents lie.
        Each meeting participant is byzantine with the hypergeometric
        membership probability; a byzantine participant presents a lie
        state and never updates its own.  ``"stubborn"`` always lies
        with the minority input state (requires a defined expected
        output, like targeted flips); ``"adaptive"`` lies with the
        input state of whichever opinion class currently holds fewer
        supporters — the majority-flipping adversary (ties fall back
        to the stubborn lie).  Requires a fixed population (no churn)
        and ``f < n`` (checked where ``n`` is known).
    horizon:
        Number of interactions during which faults are armed, counted
        on the run's interaction clock; ``None`` arms them forever.
    min_population:
        Floor for crash-induced shrinkage (at least 2 — the model
        needs a pair to schedule).
    scheduler / scheduler_strength / scheduler_clusters:
        Adversarial pair selection: ``"stubborn"`` feeds the same
        ordered pair with probability ``scheduler_strength``;
        ``"clustered"`` keeps interactions inside contiguous clusters
        with probability ``scheduler_strength`` (``scheduler_clusters``
        blocks).  Requires the agent engine and no churn.
    """

    flip_prob: float = 0.0
    flip_mode: str = "uniform"
    crash_prob: float = 0.0
    join_prob: float = 0.0
    drop_prob: float = 0.0
    oneway_prob: float = 0.0
    byzantine_f: int = 0
    byzantine_mode: str = "stubborn"
    horizon: int | None = None
    min_population: int = 2
    scheduler: str | None = None
    scheduler_strength: float = 0.9
    scheduler_clusters: int = 2

    def __post_init__(self):
        for name in ("flip_prob", "crash_prob", "join_prob",
                     "drop_prob", "oneway_prob", "scheduler_strength"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise InvalidParameterError(
                    f"{name} must be in [0, 1], got {value}")
        if self.flip_mode not in _FLIP_MODES:
            raise InvalidParameterError(
                f"flip_mode must be one of {_FLIP_MODES}, "
                f"got {self.flip_mode!r}")
        if not isinstance(self.byzantine_f, int) \
                or isinstance(self.byzantine_f, bool):
            raise InvalidParameterError(
                f"byzantine_f must be an integer corruption budget, "
                f"got {self.byzantine_f!r}")
        if self.byzantine_f < 0:
            raise InvalidParameterError(
                f"byzantine_f must be >= 0, got {self.byzantine_f}")
        if self.byzantine_mode not in _BYZANTINE_MODES:
            raise InvalidParameterError(
                f"byzantine_mode must be one of {_BYZANTINE_MODES}, "
                f"got {self.byzantine_mode!r}")
        if self.byzantine_f > 0 and self.churn:
            raise InvalidParameterError(
                "byzantine corruption budgets address a fixed "
                "population (f out of n); combining them with "
                "crash/join churn is not supported")
        if self.horizon is not None and self.horizon < 1:
            raise InvalidParameterError(
                f"horizon must be a positive interaction count, "
                f"got {self.horizon}")
        if self.min_population < 2:
            raise InvalidParameterError(
                f"min_population must be >= 2, got {self.min_population}")
        if self.scheduler is not None:
            if self.scheduler not in _SCHEDULERS:
                raise InvalidParameterError(
                    f"scheduler must be one of {_SCHEDULERS}, "
                    f"got {self.scheduler!r}")
            if self.churn:
                raise InvalidParameterError(
                    "adversarial schedulers address a fixed population; "
                    "combining them with crash/join churn is not supported")
        if self.scheduler_clusters < 2:
            raise InvalidParameterError(
                f"scheduler_clusters must be >= 2, "
                f"got {self.scheduler_clusters}")

    # -- classification ------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether this spec perturbs the clean model at all."""
        return (self.flip_prob > 0 or self.crash_prob > 0
                or self.join_prob > 0 or self.drop_prob > 0
                or self.oneway_prob > 0 or self.byzantine_f > 0
                or self.scheduler is not None)

    @property
    def churn(self) -> bool:
        """Whether the population can change size mid-run."""
        return self.crash_prob > 0 or self.join_prob > 0

    @property
    def can_unsettle(self) -> bool:
        """Whether an armed fault can break an already-settled run.

        Flips rewrite states arbitrarily, joins add input-state
        agents, and byzantine lies push honest agents out of a
        unanimous configuration; crashes, drops, and one-way
        interactions can only remove or suppress activity, which
        preserves unanimity.
        """
        return (self.flip_prob > 0 or self.join_prob > 0
                or self.byzantine_f > 0)

    def key(self) -> dict:
        """Canonical fingerprint fragment: non-default fields only.

        Emitting only what differs from the defaults keeps existing
        cache entries addressable when future fields are added, and
        guarantees two spellings of the same fault model hash alike.
        """
        out = {}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value != field.default:
                out[field.name] = value
        return out


def active_faults(faults) -> FaultSpec | None:
    """Normalize a ``faults`` argument: ``None`` for a null spec."""
    if faults is None:
        return None
    if not isinstance(faults, FaultSpec):
        raise InvalidParameterError(
            f"faults must be a repro.FaultSpec or None, "
            f"got {type(faults).__name__}")
    return faults if faults.active else None


class FaultRuntime:
    """Per-run injector state: resolved targets plus event counters.

    Built once per ``Engine.run`` (or per ensemble chunk) by
    :meth:`build`; engines read the probability fields directly in
    their inner loops and bump the counter attributes on every
    injected event.
    """

    __slots__ = ("spec", "flip_prob", "crash_prob", "join_prob",
                 "drop_prob", "oneway_prob", "horizon", "hold_until",
                 "floor", "churn", "flip_states", "join_states",
                 "byz_f", "byz_mode", "byz_lie", "byz_lie_a",
                 "byz_lie_b", "byz_class",
                 "flips", "crashes", "joins", "drops", "oneway",
                 "byzantine_lies", "byzantine_meetings")

    def __init__(self, spec, flip_states, join_states, *,
                 byz_lie=0, byz_lie_a=0, byz_lie_b=0, byz_class=None):
        self.spec = spec
        self.flip_prob = spec.flip_prob
        self.crash_prob = spec.crash_prob
        self.join_prob = spec.join_prob
        self.drop_prob = spec.drop_prob
        self.oneway_prob = spec.oneway_prob
        self.horizon = spec.horizon
        # Runs under unsettling faults are held in the arena until the
        # horizon passes; see the module docstring for the rationale.
        self.hold_until = (spec.horizon
                           if spec.can_unsettle and spec.horizon is not None
                           else 0)
        self.floor = max(2, spec.min_population)
        self.churn = spec.churn
        self.flip_states = flip_states
        self.join_states = join_states
        self.byz_f = spec.byzantine_f
        self.byz_mode = spec.byzantine_mode
        self.byz_lie = byz_lie
        self.byz_lie_a = byz_lie_a
        self.byz_lie_b = byz_lie_b
        self.byz_class = byz_class
        self.flips = 0
        self.crashes = 0
        self.joins = 0
        self.drops = 0
        self.oneway = 0
        self.byzantine_lies = 0
        self.byzantine_meetings = 0

    @classmethod
    def build(cls, spec: FaultSpec, protocol: PopulationProtocol, *,
              expected: int | None,
              scheduler_ok: bool = False,
              byzantine_ok: bool = False,
              n: int | None = None) -> "FaultRuntime":
        """Resolve the protocol-dependent pieces of ``spec``.

        Raises when the fault model needs information the run cannot
        provide (targeted corruption without an expected output, a
        byzantine budget of ``f >= n`` when the population size ``n``
        is known) or a capability the engine lacks (``scheduler_ok`` /
        ``byzantine_ok`` = False).
        """
        if spec.scheduler is not None and not scheduler_ok:
            raise InvalidParameterError(
                f"adversarial scheduler {spec.scheduler!r} requires the "
                "agent engine on the complete graph (engine='agent')")
        byz_kwargs = {}
        if spec.byzantine_f > 0:
            if not byzantine_ok:
                raise InvalidParameterError(
                    "byzantine corruption is supported by the count, "
                    "agent, and (token) ensemble engines; use one of "
                    "those instead")
            if n is not None and spec.byzantine_f >= n:
                raise InvalidParameterError(
                    f"byzantine_f={spec.byzantine_f} must be smaller "
                    f"than the population (n={n}); at least one honest "
                    "agent is required")
            byz_kwargs = cls._resolve_byzantine(spec, protocol, expected)
        s = protocol.num_states
        flip_states = np.arange(s, dtype=np.int64)
        if spec.flip_prob > 0 and spec.flip_mode == "targeted":
            if not isinstance(protocol, MajorityProtocol):
                raise InvalidParameterError(
                    "targeted corruption flips the majority and needs a "
                    f"majority protocol; {protocol.name} is not one")
            if expected is None:
                raise InvalidParameterError(
                    "targeted corruption needs a defined expected output "
                    "(a majority input form, or initial= with expected=)")
            minority = (protocol.INPUT_B if expected == MAJORITY_A
                        else protocol.INPUT_A)
            target = protocol.state_index[protocol.initial_state(minority)]
            flip_states = np.array([target], dtype=np.int64)
        if isinstance(protocol, MajorityProtocol):
            index = protocol.state_index
            join_states = np.array(
                [index[protocol.initial_state(protocol.INPUT_A)],
                 index[protocol.initial_state(protocol.INPUT_B)]],
                dtype=np.int64)
        else:
            join_states = np.arange(s, dtype=np.int64)
        return cls(spec, flip_states, join_states, **byz_kwargs)

    @staticmethod
    def _resolve_byzantine(spec, protocol, expected) -> dict:
        """Lie-state indices and output classes for byzantine faults.

        The stubborn lie (also the adaptive tie-breaker) is the
        minority *input* state, resolved like targeted flips; when no
        expected output exists (a tie input) the adaptive mode falls
        back to lying with input B.
        """
        if not isinstance(protocol, MajorityProtocol):
            raise InvalidParameterError(
                "byzantine lies target majority opinions and need a "
                f"majority protocol; {protocol.name} is not one")
        if expected is None and spec.byzantine_mode == "stubborn":
            raise InvalidParameterError(
                "stubborn byzantine lies need a defined expected output "
                "(a majority input form, or initial= with expected=)")
        index = protocol.state_index
        lie_a = index[protocol.initial_state(protocol.INPUT_A)]
        lie_b = index[protocol.initial_state(protocol.INPUT_B)]
        lie = lie_b if expected in (None, MAJORITY_A) else lie_a
        byz_class = None
        if spec.byzantine_mode == "adaptive":
            # Output class per state: 0 undecided, 1 output-0 (B side),
            # 2 output-1 (A side) — the trailing class picks the lie.
            byz_class = np.zeros(protocol.num_states, dtype=np.int64)
            for position, state in enumerate(protocol.states):
                out = protocol.output(state)
                if out == MAJORITY_A:
                    byz_class[position] = 2
                elif out is not None:
                    byz_class[position] = 1
        return {"byz_lie": lie, "byz_lie_a": lie_a, "byz_lie_b": lie_b,
                "byz_class": byz_class}

    # -- scalar draws (sequential engines) -----------------------------

    def armed(self, step: int) -> bool:
        """Whether faults fire at interaction index ``step`` (0-based)."""
        return self.horizon is None or step < self.horizon

    def pick_flip_state(self, rng) -> int:
        states = self.flip_states
        if len(states) == 1:
            return int(states[0])
        return int(states[int(rng.random() * len(states))])

    def pick_join_state(self, rng) -> int:
        states = self.join_states
        if len(states) == 1:
            return int(states[0])
        return int(states[int(rng.random() * len(states))])

    def byzantine_lie_state(self, counts) -> int:
        """The lie a byzantine participant presents right now.

        ``counts`` is the live per-state count sequence.  Stubborn
        liars present the fixed minority input state; adaptive liars
        present the input state of the opinion class currently holding
        fewer supporters (ties fall back to the stubborn lie).
        """
        if self.byz_class is None:
            return self.byz_lie
        sup_a = 0
        sup_b = 0
        for cls, count in zip(self.byz_class, counts):
            if cls == 2:
                sup_a += count
            elif cls == 1:
                sup_b += count
        if sup_a < sup_b:
            return self.byz_lie_a
        if sup_b < sup_a:
            return self.byz_lie_b
        return self.byz_lie

    # -- vectorized draws (ensemble engine) ----------------------------

    def sample_flip_states(self, rng, size: int) -> np.ndarray:
        states = self.flip_states
        if len(states) == 1:
            return np.full(size, states[0], dtype=np.int64)
        return states[rng.integers(0, len(states), size=size)]

    def sample_join_states(self, rng, size: int) -> np.ndarray:
        states = self.join_states
        if len(states) == 1:
            return np.full(size, states[0], dtype=np.int64)
        return states[rng.integers(0, len(states), size=size)]

    def byzantine_lie_rows(self, counts_matrix: np.ndarray) -> np.ndarray:
        """Per-row lie states for an ensemble counts matrix.

        The vectorized counterpart of :meth:`byzantine_lie_state`:
        one lie per ensemble row, from that row's live configuration.
        """
        rows = counts_matrix.shape[0]
        if self.byz_class is None:
            return np.full(rows, self.byz_lie, dtype=np.int64)
        sup_a = counts_matrix @ (self.byz_class == 2).astype(np.int64)
        sup_b = counts_matrix @ (self.byz_class == 1).astype(np.int64)
        return np.where(
            sup_a < sup_b, self.byz_lie_a,
            np.where(sup_b < sup_a, self.byz_lie_b, self.byz_lie))

    # -- reporting -----------------------------------------------------

    def events(self) -> dict:
        """Injection counts by fault class (the ``fault.*`` totals).

        The byzantine counters appear only under an active byzantine
        budget, so pre-existing fault models keep their exact event
        dictionaries (and cached results stay byte-identical).
        """
        out = {"flips": self.flips, "crashes": self.crashes,
               "joins": self.joins, "drops": self.drops,
               "oneway": self.oneway}
        if self.byz_f:
            out["byzantine_lies"] = self.byzantine_lies
            out["byzantine_meetings"] = self.byzantine_meetings
        return out

    def make_scheduler(self, n: int):
        """The adversarial :class:`PairSampler`, or ``None``."""
        if self.spec.scheduler is None:
            return None
        from .sim.schedule import ClusteredPairSampler, StubbornPairSampler

        if self.spec.scheduler == "stubborn":
            return StubbornPairSampler(
                n, strength=self.spec.scheduler_strength)
        return ClusteredPairSampler(
            n, clusters=self.spec.scheduler_clusters,
            intra_prob=self.spec.scheduler_strength)


def corrupt_counts(counts: Mapping, *, remove: Mapping | None = None,
                   inject: Mapping | None = None) -> dict:
    """One adversarial rewrite: move agents between states.

    The one-shot counterpart of the online fault model — ``remove``
    takes agents out of states (which must hold that many), ``inject``
    adds agents to states — used to build the "arbitrary configuration"
    of Lemma A.1 mid-run.  Returns a fresh sparse mapping with zero
    counts dropped; the input is not mutated.
    """
    corrupted = dict(counts)
    for state, count in (remove or {}).items():
        if count < 0:
            raise InvalidParameterError(
                f"remove counts must be >= 0, got {count} for {state}")
        if corrupted.get(state, 0) < count:
            raise InvalidParameterError(
                f"cannot remove {count} agent(s) from state {state}: "
                f"only {corrupted.get(state, 0)} present")
        corrupted[state] -= count
    for state, count in (inject or {}).items():
        if count < 0:
            raise InvalidParameterError(
                f"inject counts must be >= 0, got {count} for {state}")
        corrupted[state] = corrupted.get(state, 0) + count
    return {state: count for state, count in corrupted.items() if count}
