"""Parallel trial execution across processes.

Paper-scale sweeps run hundreds of independent trials per point;
they are embarrassingly parallel.  :func:`run_trials_parallel` is a
drop-in replacement for :func:`repro.sim.run.run_trials` that fans
trials out over a process pool while preserving the *exact* sequential
results: both derive per-trial (or, for the ensemble engine,
per-chunk) generators by spawning the same ``SeedSequence``, so
``run_trials_parallel(seed=7)`` returns the same list as
``run_trials(seed=7)`` (modulo order of execution, which is
re-sorted).

The protocol and the per-trial keyword arguments are shipped to each
worker exactly once, through the pool initializer — jobs carry only a
trial index and a spawned ``SeedSequence``, so large protocols are not
re-pickled per job.  With the ensemble engine each worker advances a
whole sub-ensemble (one chunk of :data:`repro.sim.run.ENSEMBLE_CHUNK_TRIALS`
trials) per job instead of a single trial.

A worker process dying mid-map (OOM kill, interpreter abort) surfaces
as :class:`~repro.errors.WorkerError` rather than the raw
``BrokenProcessPool``, marking the failure as transient so sweep
drivers — the runstore orchestrator in particular — can retry the
batch with backoff instead of aborting the sweep.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from ..errors import InvalidParameterError, WorkerError
from ..protocols.base import MajorityProtocol
from .ensemble_engine import EnsembleEngine
from .results import RunResult, TrialStats
from .run import (
    ensemble_chunks,
    ensemble_engine_for_trials,
    ensemble_trial_plan,
    raise_unsettled,
    run_majority,
)

__all__ = ["run_trials_parallel"]

#: Per-worker state, populated once by the pool initializer so the
#: protocol (and run kwargs) are pickled per worker, not per job.
_WORKER: dict = {}


def _init_worker(protocol, run_kwargs) -> None:
    _WORKER["protocol"] = protocol
    _WORKER["run_kwargs"] = run_kwargs


def _run_one(job) -> tuple[int, RunResult]:
    index, seed_seq = job
    rng = np.random.default_rng(seed_seq)
    return index, run_majority(_WORKER["protocol"], rng=rng,
                               **_WORKER["run_kwargs"])


def _run_chunk(job) -> tuple[int, list[RunResult]]:
    start, size, seed_seq = job
    spec = _WORKER["run_kwargs"]
    engine = EnsembleEngine(_WORKER["protocol"])
    results = engine.run_ensemble(
        spec["initial"], num_trials=size,
        rng=np.random.default_rng(seed_seq),
        expected=spec["expected"], **spec["sim_kwargs"])
    return start, results


def run_trials_parallel(protocol: MajorityProtocol, *, num_trials: int,
                        seed: int | None = None,
                        processes: int | None = None,
                        stats: bool = False,
                        engine="auto",
                        **run_kwargs) -> list[RunResult] | TrialStats:
    """Run ``num_trials`` independent majority trials in parallel.

    Parameters mirror :func:`repro.sim.run.run_trials`; ``processes``
    bounds the pool size (default: CPU count).  The protocol and all
    keyword arguments must be picklable (every protocol in the library
    is).  Engine resolution matches :func:`run_trials`, including the
    automatic upgrade to the ensemble engine — whose chunked fan-out
    is deliberately identical to the sequential runner's, so the two
    agree bit-for-bit for every engine choice.
    """
    if num_trials < 1:
        raise InvalidParameterError(
            f"num_trials must be >= 1, got {num_trials}")
    if processes is not None and processes < 1:
        raise InvalidParameterError(
            f"processes must be >= 1, got {processes}")
    ensemble = ensemble_engine_for_trials(protocol, engine, num_trials,
                                          run_kwargs)
    if ensemble is not None:
        results = _map_ensemble_chunks(protocol, num_trials, seed,
                                       processes, run_kwargs)
    else:
        results = _map_single_trials(protocol, num_trials, seed,
                                     processes, engine, run_kwargs)
    if stats:
        return TrialStats.from_results(results)
    return results


def _map_single_trials(protocol, num_trials, seed, processes, engine,
                       run_kwargs) -> list[RunResult]:
    children = np.random.SeedSequence(seed).spawn(num_trials)
    jobs = list(enumerate(children))
    workers = processes if processes is not None \
        else (os.cpu_count() or 1)
    # Aim for ~4 map chunks per worker: small batches must not collapse
    # into a handful of oversized chunks that idle the rest of the pool.
    chunksize = max(1, num_trials // (4 * workers))
    with ProcessPoolExecutor(
            max_workers=processes, initializer=_init_worker,
            initargs=(protocol, dict(run_kwargs, engine=engine))) as pool:
        outcomes = _map_or_worker_error(pool, _run_one, jobs,
                                        chunksize=chunksize)
    outcomes.sort(key=lambda pair: pair[0])
    return [result for _, result in outcomes]


def _map_or_worker_error(pool, fn, jobs, chunksize=1):
    """``pool.map`` with pool crashes translated to :class:`WorkerError`."""
    try:
        return list(pool.map(fn, jobs, chunksize=chunksize))
    except BrokenProcessPool as crash:
        raise WorkerError(
            "a worker process died before returning its trials; "
            "the batch is safe to retry") from crash


def _map_ensemble_chunks(protocol, num_trials, seed, processes,
                         run_kwargs) -> list[RunResult]:
    initial, expected, sim_kwargs, on_timeout = ensemble_trial_plan(
        protocol, run_kwargs)
    sizes = ensemble_chunks(num_trials)
    children = np.random.SeedSequence(seed).spawn(len(sizes))
    jobs = []
    start = 0
    for size, child in zip(sizes, children):
        jobs.append((start, size, child))
        start += size
    spec = {"initial": initial, "expected": expected,
            "sim_kwargs": sim_kwargs}
    with ProcessPoolExecutor(
            max_workers=processes, initializer=_init_worker,
            initargs=(protocol, spec)) as pool:
        outcomes = _map_or_worker_error(pool, _run_chunk, jobs)
    outcomes.sort(key=lambda pair: pair[0])
    results = [result for _, chunk in outcomes for result in chunk]
    if on_timeout == "raise":
        raise_unsettled(results)
    return results
