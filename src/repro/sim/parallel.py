"""Parallel trial execution across processes.

Paper-scale sweeps run hundreds of independent trials per point;
they are embarrassingly parallel.  :func:`run_trials_parallel` is a
drop-in replacement for :func:`repro.sim.run.simulate` that fans
trials out over a process pool while preserving the *exact*
sequential results: both derive per-trial (or, for the ensemble
engine, per-chunk) generators by spawning the same ``SeedSequence``,
so a :class:`~repro.sim.run.RunSpec` with ``seed=7`` returns the same
list in parallel as sequentially (modulo order of execution, which is
re-sorted).

The spec is shipped to each worker exactly once, through the pool
initializer — jobs carry only a trial index and a spawned
``SeedSequence``, so large protocols are not re-pickled per job.
With the ensemble engine each worker advances a whole sub-ensemble
(one chunk of :data:`repro.sim.run.ENSEMBLE_CHUNK_TRIALS` trials) per
job instead of a single trial.

Telemetry crosses the process boundary by record shipping: when the
caller's telemetry is enabled, each worker activates a private
in-memory collector, returns its raw records alongside the results,
and the parent replays them into the real sinks with
:meth:`~repro.telemetry.Telemetry.ingest` — so per-engine counters
(``engine.interactions`` etc.) aggregate across the pool exactly as
in a sequential run.  When telemetry is disabled nothing is
collected or shipped.

A worker process dying mid-map (OOM kill, interpreter abort) surfaces
as :class:`~repro.errors.WorkerError` rather than the raw
``BrokenProcessPool``, marking the failure as transient so sweep
drivers — the runstore orchestrator in particular — can retry the
batch with backoff instead of aborting the sweep.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from ..errors import InvalidParameterError, WorkerError
from ..rng import ensure_rng
from ..telemetry import InMemorySink, Telemetry
from ..telemetry.context import activate, reset
from ..telemetry.context import use as use_telemetry
from .kernels import warm_up_for_spec
from .results import RunResult, TrialStats
from .run import (
    RunSpec,
    _legacy_spec,
    _reject_extras,
    ensemble_chunks,
    make_run_engine,
    raise_unsettled,
    resolve_trial_engine,
)

__all__ = ["run_trials_parallel"]

#: Per-worker state, populated once by the pool initializer so the
#: spec (protocol included) is pickled per worker, not per job.
_WORKER: dict = {}


def _init_worker(spec: RunSpec, collect: bool) -> None:
    _WORKER.clear()
    # Fork-started workers inherit the parent's ambient telemetry stack
    # (and with it any open trace-file handle); start from a clean one.
    reset()
    _WORKER["spec"] = spec
    initial, expected = spec.resolve_input()
    _WORKER["initial"] = initial
    _WORKER["expected"] = expected
    # Kernel warm-up happens once per worker, never inside a job: the
    # first numba call pays JIT compilation and the first cext call a
    # compiler run, and neither belongs in a timed trial.  Never
    # fatal -- an unusable backend just means the engines run numpy.
    try:
        warm_up_for_spec(spec)
    except Exception:
        pass
    if collect:
        sink = InMemorySink()
        _WORKER["sink"] = sink
        activate(Telemetry([sink]))


def _drain_records() -> list[dict] | None:
    sink = _WORKER.get("sink")
    if sink is None:
        return None
    records = list(sink.records)
    sink.clear()
    return records


def _run_one(job) -> tuple[int, RunResult, list[dict] | None]:
    index, seed_seq = job
    spec = _WORKER["spec"]
    engine = _WORKER.get("engine")
    if engine is None:
        engine = make_run_engine(spec)
        _WORKER["engine"] = engine
    result = engine.run(_WORKER["initial"],
                        rng=np.random.default_rng(seed_seq),
                        max_steps=spec.max_steps,
                        max_parallel_time=spec.max_parallel_time,
                        expected=_WORKER["expected"],
                        recorder=spec.recorder,
                        event_observer=spec.event_observer,
                        faults=spec.faults,
                        on_timeout=spec.on_timeout)
    return index, result, _drain_records()


def _run_chunk(job) -> tuple[int, list[RunResult], list[dict] | None]:
    start, size, seed_seq = job
    spec = _WORKER["spec"]
    engine = _WORKER.get("engine")
    if engine is None:
        # Re-resolve from the spec so the worker advances its chunk on
        # the same ensemble engine (token or count) the sequential
        # runner would pick — resolution is deterministic, so parallel
        # stays bit-identical to sequential for every engine choice.
        engine, _ = resolve_trial_engine(spec)
        _WORKER["engine"] = engine
    results = engine.run_ensemble(
        _WORKER["initial"], num_trials=size,
        rng=np.random.default_rng(seed_seq),
        expected=_WORKER["expected"],
        max_steps=spec.max_steps,
        max_parallel_time=spec.max_parallel_time,
        faults=spec.faults)
    return start, results, _drain_records()


def _spawn_sequences(seed, count: int) -> list[np.random.SeedSequence]:
    """The same children :func:`repro.rng.spawn` would produce, but as
    picklable ``SeedSequence`` objects for cheap job payloads."""
    return ensure_rng(seed).bit_generator.seed_seq.spawn(count)


def run_trials_parallel(spec_or_protocol, *, processes: int | None = None,
                        stats: bool = False, telemetry=None,
                        **kwargs) -> list[RunResult] | TrialStats:
    """Run a spec's trials in parallel across a process pool.

    Preferred form: ``run_trials_parallel(spec, processes=...)``; the
    historical ``run_trials_parallel(protocol, num_trials=..., ...)``
    keyword form still works but emits a :class:`DeprecationWarning`.
    ``processes`` bounds the pool size (default: CPU count); the spec
    must be picklable (every protocol in the library is; telemetry is
    stripped before shipping and merged back by record replay).
    Engine resolution matches :func:`~repro.sim.run.simulate`,
    including the automatic upgrade to the ensemble engine — whose
    chunked fan-out is deliberately identical to the sequential
    runner's, so the two agree bit-for-bit for every engine choice.
    """
    if isinstance(spec_or_protocol, RunSpec):
        _reject_extras("run_trials_parallel", kwargs)
        spec = spec_or_protocol
        if telemetry is not None:
            spec = spec.replace(telemetry=telemetry)
    else:
        if telemetry is not None:
            kwargs["telemetry"] = telemetry
        spec = _legacy_spec("run_trials_parallel", spec_or_protocol,
                            **kwargs)
    if processes is not None and processes < 1:
        raise InvalidParameterError(
            f"processes must be >= 1, got {processes}")
    with use_telemetry(spec.telemetry) as active:
        ensemble, fallback = resolve_trial_engine(spec)
        if active.enabled:
            if fallback is not None:
                active.event("engine.fallback", requested="auto",
                             reason=fallback,
                             protocol=spec.protocol.name,
                             num_trials=spec.num_trials)
            active.count("sim.trials", spec.num_trials,
                         protocol=spec.protocol.name)
        shipped = spec.replace(telemetry=None)
        if ensemble is not None:
            results = _map_ensemble_chunks(shipped, processes, active)
        else:
            results = _map_single_trials(shipped, processes, active)
    if stats:
        return TrialStats.from_results(results)
    return results


def _map_single_trials(spec: RunSpec, processes, telemetry
                       ) -> list[RunResult]:
    jobs = list(enumerate(_spawn_sequences(spec.seed, spec.num_trials)))
    workers = processes if processes is not None \
        else (os.cpu_count() or 1)
    # Aim for ~4 map chunks per worker: small batches must not collapse
    # into a handful of oversized chunks that idle the rest of the pool.
    chunksize = max(1, spec.num_trials // (4 * workers))
    with ProcessPoolExecutor(
            max_workers=processes, initializer=_init_worker,
            initargs=(spec, telemetry.enabled)) as pool:
        outcomes = _map_or_worker_error(pool, _run_one, jobs,
                                        chunksize=chunksize)
    outcomes.sort(key=lambda item: item[0])
    _merge_records(telemetry, outcomes)
    return [result for _, result, _ in outcomes]


def _map_or_worker_error(pool, fn, jobs, chunksize=1):
    """``pool.map`` with pool crashes translated to :class:`WorkerError`."""
    try:
        return list(pool.map(fn, jobs, chunksize=chunksize))
    except BrokenProcessPool as crash:
        raise WorkerError(
            "a worker process died before returning its trials; "
            "the batch is safe to retry") from crash


def _merge_records(telemetry, outcomes) -> None:
    """Replay worker telemetry records into the parent's sinks,
    ordered by trial/chunk index so merged traces are deterministic."""
    if not telemetry.enabled:
        return
    for _, _, records in outcomes:
        if records:
            telemetry.ingest(records)


def _map_ensemble_chunks(spec: RunSpec, processes, telemetry
                         ) -> list[RunResult]:
    sizes = ensemble_chunks(spec.num_trials)
    children = _spawn_sequences(spec.seed, len(sizes))
    jobs = []
    start = 0
    for size, child in zip(sizes, children):
        jobs.append((start, size, child))
        start += size
    with ProcessPoolExecutor(
            max_workers=processes, initializer=_init_worker,
            initargs=(spec, telemetry.enabled)) as pool:
        outcomes = _map_or_worker_error(pool, _run_chunk, jobs)
    outcomes.sort(key=lambda item: item[0])
    _merge_records(telemetry, outcomes)
    results = [result for _, chunk, _ in outcomes
               for result in chunk]
    if spec.on_timeout == "raise":
        raise_unsettled(results)
    return results
