"""Parallel trial execution across processes.

Paper-scale sweeps run hundreds of independent trials per point;
they are embarrassingly parallel.  :func:`run_trials_parallel` is a
drop-in replacement for :func:`repro.sim.run.run_trials` that fans
trials out over a process pool while preserving the *exact* sequential
results: both derive per-trial generators by spawning the same
``SeedSequence``, so ``run_trials_parallel(seed=7)`` returns the same
list as ``run_trials(seed=7)`` (modulo order of execution, which is
re-sorted).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from ..errors import InvalidParameterError
from ..protocols.base import MajorityProtocol
from .results import RunResult, TrialStats
from .run import run_majority

__all__ = ["run_trials_parallel"]


def _run_one(packed) -> tuple[int, RunResult]:
    index, protocol, seed_seq, run_kwargs = packed
    rng = np.random.default_rng(seed_seq)
    return index, run_majority(protocol, rng=rng, **run_kwargs)


def run_trials_parallel(protocol: MajorityProtocol, *, num_trials: int,
                        seed: int | None = None,
                        processes: int | None = None,
                        stats: bool = False,
                        **run_kwargs) -> list[RunResult] | TrialStats:
    """Run ``num_trials`` independent majority trials in parallel.

    Parameters mirror :func:`repro.sim.run.run_trials`; ``processes``
    bounds the pool size (default: CPU count).  The protocol and all
    keyword arguments must be picklable (every protocol in the library
    is).
    """
    if num_trials < 1:
        raise InvalidParameterError(
            f"num_trials must be >= 1, got {num_trials}")
    if processes is not None and processes < 1:
        raise InvalidParameterError(
            f"processes must be >= 1, got {processes}")
    children = np.random.SeedSequence(seed).spawn(num_trials)
    jobs = [(index, protocol, child, run_kwargs)
            for index, child in enumerate(children)]
    with ProcessPoolExecutor(max_workers=processes) as pool:
        outcomes = list(pool.map(_run_one, jobs,
                                 chunksize=max(1, num_trials // 64)))
    outcomes.sort(key=lambda pair: pair[0])
    results = [result for _, result in outcomes]
    if stats:
        return TrialStats.from_results(results)
    return results
