"""Batched numpy engine: approximate, very high throughput.

Per *round* the engine draws a uniformly random set of ``k`` disjoint
agent pairs (a partial random matching) and applies the transition to
all of them vectorized.  This deviates from the sequential model in
one way only: the ``k`` pairs of a round cannot share agents, whereas
``k`` consecutive sequential interactions could.  The per-round bias
is ``O(k^2 / n^2)``; with the default ``batch_fraction = 0.05`` (5% of
agents per round) sweep results are indistinguishable from the exact
engines (``tests/sim/test_engine_agreement.py`` checks this), while
throughput improves by two to three orders of magnitude — the engine
that makes the paper-scale Figure 4 sweep practical.

Convergence is checked once per round, so reported convergence times
carry an additive error of at most one round (``k`` interactions).
For exact times use :class:`~repro.sim.count_engine.CountEngine`.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError
from .engine import Engine, check_budget_sanity

__all__ = ["BatchEngine"]


class BatchEngine(Engine):
    """Vectorized random-matching simulation (complete graph only).

    Parameters
    ----------
    protocol:
        The protocol; its :meth:`make_batch_kernel` supplies the
        vectorized transition.
    batch_fraction:
        Fraction of the population interacting per round (in ``(0,
        1]``); ``0.05`` means 2.5% of agents initiate per round.
    """

    name = "batch"
    supports_faults = True

    def __init__(self, protocol, *, batch_fraction: float = 0.05):
        super().__init__(protocol)
        if not 0.0 < batch_fraction <= 1.0:
            raise InvalidParameterError(
                f"batch_fraction must be in (0, 1], got {batch_fraction}")
        self.batch_fraction = batch_fraction

    def _telemetry_labels(self) -> dict:
        return {"batch_fraction": self.batch_fraction}

    def _supports_observers(self) -> bool:
        return False  # rounds, not per-interaction events

    def _simulate(self, counts, n, rng, max_steps, tracker, recorder):
        check_budget_sanity(max_steps)
        kernel = self.protocol.make_batch_kernel()  # memoized per protocol
        s = self.protocol.num_states

        agents = np.repeat(np.arange(s, dtype=np.int64),
                           np.asarray(counts, dtype=np.int64))
        rng.shuffle(agents)
        pairs_per_round = max(1, int(n * self.batch_fraction / 2))

        dense = np.asarray(counts, dtype=np.int64)
        steps = 0
        productive = 0
        while steps < max_steps:
            k = min(pairs_per_round, max_steps - steps)
            chosen = rng.choice(n, size=2 * k, replace=False)
            initiators = chosen[:k]
            responders = chosen[k:]
            old_x = agents[initiators]
            old_y = agents[responders]
            new_x, new_y = kernel(old_x, old_y)
            changed = int(np.count_nonzero((new_x != old_x)
                                           | (new_y != old_y)))
            steps += k
            if changed:
                productive += changed
                agents[initiators] = new_x
                agents[responders] = new_y
                # Incremental count update: O(k) instead of O(n).
                dense += np.bincount(new_x, minlength=s)
                dense += np.bincount(new_y, minlength=s)
                dense -= np.bincount(old_x, minlength=s)
                dense -= np.bincount(old_y, minlength=s)
                counts[:] = dense.tolist()
                tracker.reset(counts)
                if recorder is not None:
                    recorder.maybe_record(steps, counts)
                if tracker.settled():
                    return steps, productive, False, None
        return steps, productive, False, None

    def _simulate_faulted(self, counts, n, rng, max_steps, tracker,
                          recorder, runtime):
        """Round-granular fault injection.

        Interaction faults (drop / one-way) apply vectorized to the
        armed prefix of each round's matching; state faults arrive as
        binomial event counts per round (the round *is* the engine's
        time step, so sub-round ordering is meaningless here — like
        convergence, fault timing carries an additive error of at most
        one round).
        """
        check_budget_sanity(max_steps)
        kernel = self.protocol.make_batch_kernel()
        s = self.protocol.num_states

        agents = np.repeat(np.arange(s, dtype=np.int64),
                           np.asarray(counts, dtype=np.int64))
        rng.shuffle(agents)

        flip_p = runtime.flip_prob
        crash_p = runtime.crash_prob
        join_p = runtime.join_prob
        drop_p = runtime.drop_prob
        ow_p = runtime.oneway_prob
        horizon = runtime.horizon
        hold_until = runtime.hold_until
        floor = runtime.floor

        dense = np.asarray(counts, dtype=np.int64)
        steps = 0
        productive = 0
        while steps < max_steps:
            n_live = len(agents)
            pairs_per_round = max(1, int(n_live * self.batch_fraction / 2))
            k = min(pairs_per_round, max_steps - steps, n_live // 2)
            armed_ticks = (k if horizon is None
                           else max(0, min(k, horizon - steps)))
            chosen = rng.choice(n_live, size=2 * k, replace=False)
            initiators = chosen[:k]
            responders = chosen[k:]
            old_x = agents[initiators]
            old_y = agents[responders]
            new_x, new_y = kernel(old_x, old_y)
            if armed_ticks and (drop_p > 0.0 or ow_p > 0.0):
                armed_mask = np.arange(k) < armed_ticks
                dropped = np.zeros(k, dtype=bool)
                if drop_p > 0.0:
                    dropped = armed_mask & (rng.random(k) < drop_p)
                    runtime.drops += int(dropped.sum())
                    new_x = np.where(dropped, old_x, new_x)
                    new_y = np.where(dropped, old_y, new_y)
                if ow_p > 0.0:
                    oneway = (armed_mask & ~dropped
                              & (rng.random(k) < ow_p))
                    runtime.oneway += int(oneway.sum())
                    new_y = np.where(oneway, old_y, new_y)
            changed = int(np.count_nonzero((new_x != old_x)
                                           | (new_y != old_y)))
            steps += k
            touched = False
            if changed:
                productive += changed
                agents[initiators] = new_x
                agents[responders] = new_y
                dense += np.bincount(new_x, minlength=s)
                dense += np.bincount(new_y, minlength=s)
                dense -= np.bincount(old_x, minlength=s)
                dense -= np.bincount(old_y, minlength=s)
                touched = True
            if armed_ticks:
                if flip_p > 0.0:
                    for _ in range(rng.binomial(armed_ticks, flip_p)):
                        runtime.flips += 1
                        position = int(rng.random() * len(agents))
                        old = int(agents[position])
                        new = runtime.pick_flip_state(rng)
                        if new != old:
                            agents[position] = new
                            dense[old] -= 1
                            dense[new] += 1
                            touched = True
                if crash_p > 0.0:
                    for _ in range(rng.binomial(armed_ticks, crash_p)):
                        if len(agents) <= floor:
                            break
                        runtime.crashes += 1
                        position = int(rng.random() * len(agents))
                        old = int(agents[position])
                        agents[position] = agents[-1]
                        agents = agents[:-1]
                        dense[old] -= 1
                        touched = True
                if join_p > 0.0:
                    for _ in range(rng.binomial(armed_ticks, join_p)):
                        runtime.joins += 1
                        new = runtime.pick_join_state(rng)
                        agents = np.append(agents, np.int64(new))
                        dense[new] += 1
                        touched = True
            if touched:
                counts[:] = dense.tolist()
                tracker.reset(counts)
                if recorder is not None:
                    recorder.maybe_record(steps, counts)
            if tracker.settled() and steps >= hold_until:
                return steps, productive, False, None
        return steps, productive, False, None
