"""Batched numpy engine: approximate, very high throughput.

Per *round* the engine draws a uniformly random set of ``k`` disjoint
agent pairs (a partial random matching) and applies the transition to
all of them vectorized.  This deviates from the sequential model in
one way only: the ``k`` pairs of a round cannot share agents, whereas
``k`` consecutive sequential interactions could.  The per-round bias
is ``O(k^2 / n^2)``; with the default ``batch_fraction = 0.05`` (5% of
agents per round) sweep results are indistinguishable from the exact
engines (``tests/sim/test_engine_agreement.py`` checks this), while
throughput improves by two to three orders of magnitude — the engine
that makes the paper-scale Figure 4 sweep practical.

Convergence is checked once per round, so reported convergence times
carry an additive error of at most one round (``k`` interactions).
For exact times use :class:`~repro.sim.count_engine.CountEngine`.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError
from .engine import Engine, check_budget_sanity

__all__ = ["BatchEngine"]


class BatchEngine(Engine):
    """Vectorized random-matching simulation (complete graph only).

    Parameters
    ----------
    protocol:
        The protocol; its :meth:`make_batch_kernel` supplies the
        vectorized transition.
    batch_fraction:
        Fraction of the population interacting per round (in ``(0,
        1]``); ``0.05`` means 2.5% of agents initiate per round.
    """

    name = "batch"

    def __init__(self, protocol, *, batch_fraction: float = 0.05):
        super().__init__(protocol)
        if not 0.0 < batch_fraction <= 1.0:
            raise InvalidParameterError(
                f"batch_fraction must be in (0, 1], got {batch_fraction}")
        self.batch_fraction = batch_fraction

    def _telemetry_labels(self) -> dict:
        return {"batch_fraction": self.batch_fraction}

    def _supports_observers(self) -> bool:
        return False  # rounds, not per-interaction events

    def _simulate(self, counts, n, rng, max_steps, tracker, recorder):
        check_budget_sanity(max_steps)
        kernel = self.protocol.make_batch_kernel()  # memoized per protocol
        s = self.protocol.num_states

        agents = np.repeat(np.arange(s, dtype=np.int64),
                           np.asarray(counts, dtype=np.int64))
        rng.shuffle(agents)
        pairs_per_round = max(1, int(n * self.batch_fraction / 2))

        dense = np.asarray(counts, dtype=np.int64)
        steps = 0
        productive = 0
        while steps < max_steps:
            k = min(pairs_per_round, max_steps - steps)
            chosen = rng.choice(n, size=2 * k, replace=False)
            initiators = chosen[:k]
            responders = chosen[k:]
            old_x = agents[initiators]
            old_y = agents[responders]
            new_x, new_y = kernel(old_x, old_y)
            changed = int(np.count_nonzero((new_x != old_x)
                                           | (new_y != old_y)))
            steps += k
            if changed:
                productive += changed
                agents[initiators] = new_x
                agents[responders] = new_y
                # Incremental count update: O(k) instead of O(n).
                dense += np.bincount(new_x, minlength=s)
                dense += np.bincount(new_y, minlength=s)
                dense -= np.bincount(old_x, minlength=s)
                dense -= np.bincount(old_y, minlength=s)
                counts[:] = dense.tolist()
                tracker.reset(counts)
                if recorder is not None:
                    recorder.maybe_record(steps, counts)
                if tracker.settled():
                    return steps, productive, False, None
        return steps, productive, False, None
