"""Simulation engines and the run harness.

See :mod:`repro.sim.engine` for the engine comparison table and
:mod:`repro.sim.run` for the high-level API.
"""

from .agent_engine import AgentEngine
from .batch_engine import BatchEngine
from .count_engine import CountEngine
from .count_ensemble_engine import CountEnsembleEngine
from .engine import DEFAULT_MAX_PARALLEL_TIME, Engine
from .ensemble_engine import EnsembleEngine
from .fenwick import FenwickTree
from .gillespie import ContinuousTimeEngine, NullSkippingEngine
from .kernels.jit_engines import (
    JitBatchEngine,
    JitCountEngine,
    JitCountEnsembleEngine,
)
from .observers import ObservingTracker, RuleCensus, avc_rule_classifier
from .parallel import run_trials_parallel
from .record import EventRecorder, TrajectoryRecorder
from .results import RunResult, TrialStats
from .run import (
    ENGINE_NAMES,
    RunSpec,
    make_engine,
    run,
    run_majority,
    run_trials,
    simulate,
)
from .schedule import (
    ClusteredPairSampler,
    CompletePairSampler,
    GraphPairSampler,
    PairSampler,
    StubbornPairSampler,
)

__all__ = [
    "Engine",
    "AgentEngine",
    "CountEngine",
    "CountEnsembleEngine",
    "EnsembleEngine",
    "NullSkippingEngine",
    "ContinuousTimeEngine",
    "BatchEngine",
    "JitCountEngine",
    "JitCountEnsembleEngine",
    "JitBatchEngine",
    "FenwickTree",
    "RunResult",
    "TrialStats",
    "TrajectoryRecorder",
    "EventRecorder",
    "PairSampler",
    "CompletePairSampler",
    "GraphPairSampler",
    "StubbornPairSampler",
    "ClusteredPairSampler",
    "RunSpec",
    "simulate",
    "make_engine",
    "run",
    "run_majority",
    "run_trials",
    "run_trials_parallel",
    "ObservingTracker",
    "RuleCensus",
    "avc_rule_classifier",
    "ENGINE_NAMES",
    "DEFAULT_MAX_PARALLEL_TIME",
]
