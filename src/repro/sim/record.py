"""Trajectory recording for simulation runs.

Engines accept an optional recorder and call ``maybe_record(step,
counts)`` after every state-changing interaction (plus once at start
and once at the end of the run).  :class:`TrajectoryRecorder` keeps
periodic snapshots; :class:`EventRecorder` keeps every event up to a
cap.  Both store *copies* of the count vector, so snapshots stay valid
after the engine moves on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TrajectoryRecorder", "EventRecorder"]


class TrajectoryRecorder:
    """Record count-vector snapshots every ``interval_steps`` steps.

    Attributes
    ----------
    steps:
        List of interaction indices at which snapshots were taken.
    snapshots:
        List of dense count vectors (``numpy`` arrays), parallel to
        ``steps``.
    """

    def __init__(self, interval_steps: int):
        if interval_steps < 1:
            raise ValueError(
                f"interval_steps must be >= 1, got {interval_steps}")
        self.interval_steps = interval_steps
        self.steps: list[int] = []
        self.snapshots: list[np.ndarray] = []
        self._next_due = 0

    def maybe_record(self, step: int, counts) -> None:
        """Snapshot if ``step`` has reached the next due tick."""
        if step >= self._next_due:
            self.steps.append(step)
            self.snapshots.append(np.array(counts, dtype=np.int64))
            self._next_due = step + self.interval_steps

    def force_record(self, step: int, counts) -> None:
        """Snapshot unconditionally (used for the final configuration)."""
        if self.steps and self.steps[-1] == step:
            return
        self.steps.append(step)
        self.snapshots.append(np.array(counts, dtype=np.int64))
        self._next_due = step + self.interval_steps

    def as_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(steps, matrix)`` with one snapshot per matrix row."""
        return (np.array(self.steps, dtype=np.int64),
                np.array(self.snapshots, dtype=np.int64))


class EventRecorder:
    """Record every state-changing interaction, up to ``max_events``."""

    def __init__(self, max_events: int = 1_000_000):
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        self.steps: list[int] = []
        self.snapshots: list[np.ndarray] = []

    @property
    def truncated(self) -> bool:
        """Whether events were dropped after hitting ``max_events``."""
        return len(self.steps) >= self.max_events

    def maybe_record(self, step: int, counts) -> None:
        if len(self.steps) >= self.max_events:
            return
        self.steps.append(step)
        self.snapshots.append(np.array(counts, dtype=np.int64))

    def force_record(self, step: int, counts) -> None:
        self.maybe_record(step, counts)
