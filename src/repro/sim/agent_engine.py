"""Agent-array engine: the literal simulation of the model.

Keeps one state per agent and replays the scheduler faithfully —
``O(1)`` per interaction, ``O(n)`` memory.  This is the only engine
that supports non-complete interaction graphs, and it doubles as the
reference implementation the faster engines are validated against.
"""

from __future__ import annotations

from ..errors import InvalidParameterError
from .engine import Engine, check_budget_sanity
from .schedule import CompletePairSampler, GraphPairSampler, PairSampler

__all__ = ["AgentEngine"]

_BLOCK = 8192


class AgentEngine(Engine):
    """Explicit-agents simulation on an arbitrary interaction graph.

    Parameters
    ----------
    protocol:
        The population protocol to simulate.
    graph:
        Optional ``networkx`` interaction graph; ``None`` means the
        complete graph.  Mutually exclusive with ``pair_sampler``.
    pair_sampler:
        Optional custom :class:`~repro.sim.schedule.PairSampler`.
    placement:
        How agents are laid out over node indices: ``"random"``
        (default, a uniform shuffle) or ``"clustered"`` (agents of the
        same state occupy contiguous index blocks — the adversarial
        placement of :func:`repro.workloads.clustered_placement`, where
        opinions must cross a community boundary to mix).  Placement
        only matters on non-complete topologies, but is honoured
        everywhere for uniformity.
    """

    name = "agent"
    supports_faults = True
    supports_fault_scheduler = True
    supports_byzantine = True

    def __init__(self, protocol, *, graph=None, pair_sampler=None,
                 placement: str = "random"):
        super().__init__(protocol)
        if graph is not None and pair_sampler is not None:
            raise ValueError("give graph or pair_sampler, not both")
        if placement not in ("random", "clustered"):
            raise ValueError(
                f"placement must be 'random' or 'clustered', "
                f"got {placement!r}")
        self.placement = placement
        if pair_sampler is not None:
            self._sampler: PairSampler | None = pair_sampler
        elif graph is not None:
            self._sampler = GraphPairSampler(graph)
        else:
            self._sampler = None  # complete graph, built per run for n

    def _make_sampler(self, n: int) -> PairSampler:
        if self._sampler is None:
            return CompletePairSampler(n)
        if self._sampler.n != n:
            raise ValueError(
                f"initial configuration has {n} agents but the sampler "
                f"addresses {self._sampler.n}")
        return self._sampler

    def _layout_agents(self, counts, rng) -> list[int]:
        """Assign agents to node indices per the placement policy."""
        agents: list[int] = []
        for state_index, count in enumerate(counts):
            agents.extend([state_index] * count)
        if self.placement == "random":
            # Shuffle so that placement on a non-complete graph is
            # unbiased.
            rng.shuffle(agents)
        # "clustered": keep the contiguous per-state blocks — exactly
        # clustered_placement's layout for two-state inputs, and its
        # natural generalization beyond them.
        return agents

    def _telemetry_labels(self) -> dict:
        labels = {"graph": "complete" if self._sampler is None
                  else type(self._sampler).__name__}
        if self.placement != "random":
            labels["placement"] = self.placement
        return labels

    def _simulate(self, counts, n, rng, max_steps, tracker, recorder):
        check_budget_sanity(max_steps)
        sampler = self._make_sampler(n)
        lookup = self._transition_lookup()

        agents = self._layout_agents(counts, rng)

        steps = 0
        productive = 0
        while steps < max_steps:
            block = min(_BLOCK, max_steps - steps)
            first, second = sampler.sample_block(rng, block)
            for a, b in zip(first, second):
                steps += 1
                i = agents[a]
                j = agents[b]
                new_i, new_j = lookup(i, j)
                if new_i == i and new_j == j:
                    continue
                productive += 1
                agents[a] = new_i
                agents[b] = new_j
                counts[i] -= 1
                counts[j] -= 1
                counts[new_i] += 1
                counts[new_j] += 1
                tracker.update(i, j, new_i, new_j)
                if recorder is not None:
                    recorder.maybe_record(steps, counts)
                if tracker.settled():
                    return steps, productive, False, None
        return steps, productive, False, None

    # ------------------------------------------------------------------
    # Fault injection (see repro.faults)
    # ------------------------------------------------------------------

    def _simulate_faulted(self, counts, n, rng, max_steps, tracker,
                          recorder, runtime):
        check_budget_sanity(max_steps)
        scheduler = runtime.make_scheduler(n)
        if scheduler is not None and self._sampler is not None:
            raise InvalidParameterError(
                "adversarial fault schedulers replace the pair sampler "
                "and require the complete graph; drop the graph/"
                "pair_sampler or the FaultSpec scheduler")
        if runtime.churn and self._sampler is not None:
            raise InvalidParameterError(
                "population churn resizes the agent set and is only "
                "supported on the complete interaction graph")
        agents = self._layout_agents(counts, rng)
        if runtime.churn:
            return self._faulted_churn_loop(
                agents, counts, n, rng, max_steps, tracker, recorder,
                runtime)
        sampler = scheduler if scheduler is not None \
            else self._make_sampler(n)
        return self._faulted_sampler_loop(
            sampler, agents, counts, n, rng, max_steps, tracker,
            recorder, runtime)

    def _faulted_sampler_loop(self, sampler, agents, counts, n, rng,
                              max_steps, tracker, recorder, runtime):
        """Fixed-population fault loop: pairs come from the sampler.

        Byzantine membership is drawn per meeting with the
        hypergeometric probability of a participant belonging to the
        corrupted set (agents are exchangeable, so this is the
        fixed-subset adversary in distribution — and exactly the count
        engine's chain).  The membership uniforms come from a separate
        per-block batch drawn only when the budget is positive, so
        pre-byzantine fault models keep their exact random streams.
        """
        lookup = self._transition_lookup()
        flip_p = runtime.flip_prob
        drop_p = runtime.drop_prob
        ow_p = runtime.oneway_prob
        byz_f = runtime.byz_f
        horizon = runtime.horizon
        hold_until = runtime.hold_until

        steps = 0
        productive = 0
        while steps < max_steps:
            block = min(_BLOCK, max_steps - steps)
            first, second = sampler.sample_block(rng, block)
            # Columns: drop, one-way, flip.
            fault_rows = rng.random((block, 3)).tolist()
            # Columns: initiator-byzantine, responder-byzantine.
            byz_rows = rng.random((block, 2)).tolist() if byz_f else None
            for tick, (a, b, (du, ou, fu)) in enumerate(
                    zip(first, second, fault_rows)):
                armed = horizon is None or steps < horizon
                steps += 1
                changed = False
                if armed and drop_p > 0.0 and du < drop_p:
                    runtime.drops += 1
                else:
                    i = agents[a]
                    j = agents[b]
                    if armed and byz_f:
                        bu, bv = byz_rows[tick]
                        b1 = bu * n < byz_f
                        b2 = bv * (n - 1) < byz_f - b1
                    else:
                        b1 = b2 = False
                    if b1 or b2:
                        runtime.byzantine_meetings += 1
                        runtime.byzantine_lies += b1 + b2
                        if b1 and b2:
                            new_i, new_j = i, j
                        elif b1:
                            lie = runtime.byzantine_lie_state(counts)
                            new_i, new_j = i, lookup(lie, j)[1]
                        else:
                            lie = runtime.byzantine_lie_state(counts)
                            new_i, new_j = lookup(i, lie)[0], j
                    else:
                        new_i, new_j = lookup(i, j)
                    if armed and ow_p > 0.0 and ou < ow_p:
                        runtime.oneway += 1
                        new_j = j
                    if new_i != i or new_j != j:
                        productive += 1
                        changed = True
                        agents[a] = new_i
                        agents[b] = new_j
                        counts[i] -= 1
                        counts[j] -= 1
                        counts[new_i] += 1
                        counts[new_j] += 1
                        tracker.update(i, j, new_i, new_j)
                if armed and flip_p > 0.0 and fu < flip_p:
                    runtime.flips += 1
                    position = int(rng.random() * n)
                    old = agents[position]
                    new = runtime.pick_flip_state(rng)
                    if new != old:
                        changed = True
                        agents[position] = new
                        counts[old] -= 1
                        counts[new] += 1
                        tracker.shift(old, new)
                if changed:
                    if recorder is not None:
                        recorder.maybe_record(steps, counts)
                    if tracker.settled() and steps >= hold_until:
                        return steps, productive, False, None
                elif steps == hold_until and tracker.settled():
                    # A run that settled inside the fault window
                    # retires exactly at the hold boundary.
                    return steps, productive, False, None
        return steps, productive, False, None

    def _faulted_churn_loop(self, agents, counts, n, rng, max_steps,
                            tracker, recorder, runtime):
        """Churn fault loop: the agent list grows and shrinks.

        Crashes swap-remove a uniformly random slot; joins append.
        Pairs are drawn as floats scaled by the live population, which
        changes mid-block.
        """
        lookup = self._transition_lookup()
        flip_p = runtime.flip_prob
        crash_p = runtime.crash_prob
        join_p = runtime.join_prob
        drop_p = runtime.drop_prob
        ow_p = runtime.oneway_prob
        horizon = runtime.horizon
        hold_until = runtime.hold_until
        floor = runtime.floor

        steps = 0
        productive = 0
        while steps < max_steps:
            block = min(_BLOCK, max_steps - steps)
            pair_rows = rng.random((block, 2)).tolist()
            # Columns: drop, one-way, flip, crash, join.
            fault_rows = rng.random((block, 5)).tolist()
            for (pu, pv), (du, ou, fu, cu, ju) in zip(pair_rows,
                                                      fault_rows):
                armed = horizon is None or steps < horizon
                steps += 1
                changed = False
                if armed and drop_p > 0.0 and du < drop_p:
                    runtime.drops += 1
                else:
                    a = int(pu * n)
                    b = int(pv * (n - 1))
                    b += b >= a
                    i = agents[a]
                    j = agents[b]
                    new_i, new_j = lookup(i, j)
                    if armed and ow_p > 0.0 and ou < ow_p:
                        runtime.oneway += 1
                        new_j = j
                    if new_i != i or new_j != j:
                        productive += 1
                        changed = True
                        agents[a] = new_i
                        agents[b] = new_j
                        counts[i] -= 1
                        counts[j] -= 1
                        counts[new_i] += 1
                        counts[new_j] += 1
                        tracker.update(i, j, new_i, new_j)
                if armed:
                    if flip_p > 0.0 and fu < flip_p:
                        runtime.flips += 1
                        position = int(rng.random() * n)
                        old = agents[position]
                        new = runtime.pick_flip_state(rng)
                        if new != old:
                            changed = True
                            agents[position] = new
                            counts[old] -= 1
                            counts[new] += 1
                            tracker.shift(old, new)
                    if crash_p > 0.0 and cu < crash_p and n > floor:
                        runtime.crashes += 1
                        changed = True
                        position = int(rng.random() * n)
                        old = agents[position]
                        agents[position] = agents[n - 1]
                        agents.pop()
                        counts[old] -= 1
                        tracker.adjust(old, -1)
                        n -= 1
                    if join_p > 0.0 and ju < join_p:
                        runtime.joins += 1
                        changed = True
                        new = runtime.pick_join_state(rng)
                        agents.append(new)
                        counts[new] += 1
                        tracker.adjust(new, 1)
                        n += 1
                if changed:
                    if recorder is not None:
                        recorder.maybe_record(steps, counts)
                    if tracker.settled() and steps >= hold_until:
                        return steps, productive, False, None
                elif steps == hold_until and tracker.settled():
                    return steps, productive, False, None
        return steps, productive, False, None
