"""Agent-array engine: the literal simulation of the model.

Keeps one state per agent and replays the scheduler faithfully —
``O(1)`` per interaction, ``O(n)`` memory.  This is the only engine
that supports non-complete interaction graphs, and it doubles as the
reference implementation the faster engines are validated against.
"""

from __future__ import annotations

from .engine import Engine, check_budget_sanity
from .schedule import CompletePairSampler, GraphPairSampler, PairSampler

__all__ = ["AgentEngine"]

_BLOCK = 8192


class AgentEngine(Engine):
    """Explicit-agents simulation on an arbitrary interaction graph.

    Parameters
    ----------
    protocol:
        The population protocol to simulate.
    graph:
        Optional ``networkx`` interaction graph; ``None`` means the
        complete graph.  Mutually exclusive with ``pair_sampler``.
    pair_sampler:
        Optional custom :class:`~repro.sim.schedule.PairSampler`.
    """

    name = "agent"

    def __init__(self, protocol, *, graph=None, pair_sampler=None):
        super().__init__(protocol)
        if graph is not None and pair_sampler is not None:
            raise ValueError("give graph or pair_sampler, not both")
        if pair_sampler is not None:
            self._sampler: PairSampler | None = pair_sampler
        elif graph is not None:
            self._sampler = GraphPairSampler(graph)
        else:
            self._sampler = None  # complete graph, built per run for n

    def _telemetry_labels(self) -> dict:
        return {"graph": "complete" if self._sampler is None
                else type(self._sampler).__name__}

    def _make_sampler(self, n: int) -> PairSampler:
        if self._sampler is None:
            return CompletePairSampler(n)
        if self._sampler.n != n:
            raise ValueError(
                f"initial configuration has {n} agents but the sampler "
                f"addresses {self._sampler.n}")
        return self._sampler

    def _simulate(self, counts, n, rng, max_steps, tracker, recorder):
        check_budget_sanity(max_steps)
        sampler = self._make_sampler(n)
        lookup = self._transition_lookup()

        # Lay agents out per the count vector, then shuffle so that
        # placement on a non-complete graph is unbiased.
        agents: list[int] = []
        for state_index, count in enumerate(counts):
            agents.extend([state_index] * count)
        rng.shuffle(agents)

        steps = 0
        productive = 0
        while steps < max_steps:
            block = min(_BLOCK, max_steps - steps)
            first, second = sampler.sample_block(rng, block)
            for a, b in zip(first, second):
                steps += 1
                i = agents[a]
                j = agents[b]
                new_i, new_j = lookup(i, j)
                if new_i == i and new_j == j:
                    continue
                productive += 1
                agents[a] = new_i
                agents[b] = new_j
                counts[i] -= 1
                counts[j] -= 1
                counts[new_i] += 1
                counts[new_j] += 1
                tracker.update(i, j, new_i, new_j)
                if recorder is not None:
                    recorder.maybe_record(steps, counts)
                if tracker.settled():
                    return steps, productive, False, None
        return steps, productive, False, None
