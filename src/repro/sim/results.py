"""Result types for simulation runs and trial batches."""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field

__all__ = ["RunResult", "TrialStats"]


@dataclass(frozen=True, slots=True)
class RunResult:
    """Outcome of one simulated execution.

    Attributes
    ----------
    protocol_name / engine_name:
        What ran and on which engine.
    n:
        Population size.
    steps:
        Sequential interactions executed (including null interactions
        skipped analytically by the null-skipping engine).
    settled:
        Whether the run reached an irrevocably converged configuration
        within its budget.
    decision:
        The unanimous output at settlement (0, 1, or ``None`` when not
        settled).
    expected:
        The correct output for the initial configuration (``None`` when
        unknown, e.g. a tie or a non-majority protocol).
    final_counts:
        Sparse state->count mapping of the final configuration.
    productive_steps:
        Interactions that changed at least one state, when the engine
        tracks them (``None`` otherwise).
    continuous_time:
        Elapsed continuous time for Poisson-clock runs (``None`` for
        discrete-time engines).
    fault_events:
        Injection counts by fault class (flips/crashes/joins/drops/
        oneway) when the run executed under a :class:`repro.FaultSpec`;
        ``None`` for clean runs.  Under churn, ``n`` remains the
        *initial* population — the final one is the sum of
        ``final_counts``.
    """

    protocol_name: str
    engine_name: str
    n: int
    steps: int
    settled: bool
    decision: int | None
    expected: int | None
    final_counts: dict = field(repr=False)
    productive_steps: int | None = None
    continuous_time: float | None = None
    seed: int | None = None
    #: True when the engine proved no further state change is possible
    #: (e.g. a four-state tie that froze without settling).
    frozen: bool = False
    fault_events: dict | None = None

    @property
    def parallel_time(self) -> float:
        """Parallel time: interactions divided by the population size.

        For continuous-time runs this is the elapsed Poisson-clock time
        (the two notions agree in expectation).
        """
        if self.continuous_time is not None:
            return self.continuous_time
        return self.steps / self.n

    @property
    def correct(self) -> bool | None:
        """Whether the settled decision matches the expected output.

        ``None`` when the run did not settle or no expected output is
        defined.
        """
        if not self.settled or self.expected is None:
            return None
        return self.decision == self.expected


@dataclass(frozen=True, slots=True)
class TrialStats:
    """Aggregate statistics over repeated runs of one configuration."""

    num_trials: int
    num_settled: int
    num_correct: int
    mean_parallel_time: float
    std_parallel_time: float
    min_parallel_time: float
    max_parallel_time: float
    mean_steps: float

    @property
    def error_fraction(self) -> float:
        """Fraction of *settled* runs that decided the wrong output."""
        if self.num_settled == 0:
            return math.nan
        return 1.0 - self.num_correct / self.num_settled

    @property
    def settled_fraction(self) -> float:
        """Fraction of runs that converged within budget."""
        if self.num_trials == 0:
            return math.nan
        return self.num_settled / self.num_trials

    @classmethod
    def from_results(cls, results: Sequence[RunResult]) -> "TrialStats":
        """Summarize a batch of runs.

        Timing statistics are computed over *settled* runs only (an
        unsettled run has no convergence time); callers should check
        :attr:`settled_fraction` before trusting the means.
        """
        settled = [r for r in results if r.settled]
        times = [r.parallel_time for r in settled]
        correct = sum(1 for r in settled if r.correct)
        if times:
            mean = sum(times) / len(times)
            var = sum((t - mean) ** 2 for t in times) / len(times)
            std = math.sqrt(var)
            lo, hi = min(times), max(times)
            mean_steps = sum(r.steps for r in settled) / len(settled)
        else:
            mean = std = lo = hi = mean_steps = math.nan
        return cls(
            num_trials=len(results),
            num_settled=len(settled),
            num_correct=correct,
            mean_parallel_time=mean,
            std_parallel_time=std,
            min_parallel_time=lo,
            max_parallel_time=hi,
            mean_steps=mean_steps,
        )
