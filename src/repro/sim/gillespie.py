"""Null-skipping (Gillespie-style) engines for small state spaces.

Late in a majority computation almost every scheduled interaction is a
*null* interaction (both agents keep their states): e.g. in the
four-state protocol at margin ``eps = 1/n``, convergence takes
``Theta(n)`` parallel time — ``Theta(n^2)`` interactions — but only
``O(n log n)`` of them change anything.  This engine never simulates
the null steps: it computes the total rate ``W`` of *productive*
ordered state pairs, draws the number of null steps to skip from the
geometric distribution with success probability ``W / (n(n-1))``, then
picks a productive pair with probability proportional to its count
product.  The resulting step-indexed process is *exactly* the chain of
the agent engine; each productive event costs ``O(P)`` where ``P <=
s^2`` is the number of productive ordered state pairs — so this is the
engine of choice for the 3/4-state baselines at ``n = 10^5``.

:class:`ContinuousTimeEngine` additionally tracks the Poisson-clock
time of the continuous model used by [PVV09, DV12]: every agent
initiates interactions at rate 1, so inter-interaction times are
exponential with mean ``1/n``, and the time skipped over ``k`` steps is
``Gamma(k, 1/n)``.  Parallel time and continuous time agree in
expectation; the continuous engine samples the actual clock.
"""

from __future__ import annotations

import numpy as np

from ..errors import ProtocolError
from .engine import Engine, check_budget_sanity

__all__ = ["NullSkippingEngine", "ContinuousTimeEngine"]

#: Beyond this many states the per-event O(s^2) scan stops paying off
#: against the count engine's O(log s) per raw step.
_MAX_STATES = 128


class NullSkippingEngine(Engine):
    """Exact simulation that analytically skips null interactions."""

    name = "null-skipping"
    _track_time = False

    def __init__(self, protocol):
        super().__init__(protocol)
        if protocol.num_states > _MAX_STATES:
            raise ProtocolError(
                f"{protocol.name} has {protocol.num_states} states; the "
                f"null-skipping engine supports at most {_MAX_STATES} "
                "(use CountEngine instead)")

    def _productive_pairs(self):
        """All ordered state pairs whose transition changes something."""
        lookup = self._transition_lookup()
        s = self.protocol.num_states
        pairs = []
        for i in range(s):
            for j in range(s):
                new_i, new_j = lookup(i, j)
                if (new_i, new_j) != (i, j):
                    pairs.append((i, j, new_i, new_j))
        return pairs

    def _simulate(self, counts, n, rng, max_steps, tracker, recorder):
        check_budget_sanity(max_steps)
        pairs = self._productive_pairs()
        total_pairs = n * (n - 1)
        inv_n = 1.0 / n

        steps = 0
        productive = 0
        elapsed = 0.0
        weights = [0] * len(pairs)
        while True:
            total_weight = 0
            for k, (i, j, _, _) in enumerate(pairs):
                count_i = counts[i]
                if i == j:
                    w = count_i * (count_i - 1)
                else:
                    w = count_i * counts[j]
                weights[k] = w
                total_weight += w
            if total_weight == 0:
                # No state-changing interaction is possible, ever: the
                # run is frozen (settled or deadlocked as-is).
                time_value = elapsed if self._track_time else None
                return steps, productive, True, time_value
            success_probability = total_weight / total_pairs
            skip = int(rng.geometric(success_probability))
            if steps + skip > max_steps:
                remaining = max_steps - steps
                if self._track_time and remaining > 0:
                    elapsed += float(rng.gamma(remaining, inv_n))
                time_value = elapsed if self._track_time else None
                return max_steps, productive, False, time_value
            steps += skip
            if self._track_time:
                elapsed += float(rng.gamma(skip, inv_n))
            productive += 1

            # total_weight ~ n(n-1): force int64 so the draw cannot
            # overflow on platforms where the default integer is 32-bit.
            target = int(rng.integers(0, total_weight, dtype=np.int64))
            accumulator = 0
            for k, weight in enumerate(weights):
                accumulator += weight
                if target < accumulator:
                    i, j, new_i, new_j = pairs[k]
                    break
            counts[i] -= 1
            counts[j] -= 1
            counts[new_i] += 1
            counts[new_j] += 1
            tracker.update(i, j, new_i, new_j)
            if recorder is not None:
                recorder.maybe_record(steps, counts)
            if tracker.settled():
                time_value = elapsed if self._track_time else None
                return steps, productive, False, time_value


class ContinuousTimeEngine(NullSkippingEngine):
    """Null-skipping engine under the continuous-time Poisson model.

    Results carry :attr:`~repro.sim.results.RunResult.continuous_time`;
    ``parallel_time`` reports the sampled clock instead of
    ``steps / n``.
    """

    name = "continuous-time"
    _track_time = True
