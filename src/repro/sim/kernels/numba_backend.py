"""Numba ``@njit`` kernel backend.

Importing this module requires numba (``pip install -e .[jit]``);
without it the import raises :class:`ImportError` and the kernel
loader falls back to the C-extension backend or pure numpy (see
:mod:`repro.sim.kernels`).  The three kernels are line-for-line
transliterations of ``_kernels.c`` — same algorithms, same packed
hash entries, same packed transition table
(:func:`repro.sim.kernels.pack_transition_table`), same exactness
contracts — so both compiled backends and the numpy engines produce
bit-identical results (enforced by ``tests/sim/test_kernels.py``).

``cache=True`` persists the compiled machine code next to the package
so pool workers and repeat processes skip recompilation after the
first warm-up.
"""

from __future__ import annotations

import numpy as np
from numba import njit  # hard dependency of this module only

__all__ = ["ensemble_round", "count_block", "batch_match"]

_HASH_MULT = np.uint64(0x9E3779B97F4A7C15)
_DECODE_BUCKETS = 2048


@njit(cache=True, inline="always")
def _pt_xi(e):
    return e & 0xFFFF


@njit(cache=True, inline="always")
def _pt_yj(e):
    return (e >> 16) & 0xFFFF


@njit(cache=True, inline="always")
def _pt_productive(e):
    return (e >> 32) & 1


@njit(cache=True)
def ensemble_round(raw, counts, remaining, n, ptab, cls,
                   consumed, round_prod, settled, settle_step,
                   settle_prod, decision):
    """The collision-bounded window step; see ``_kernels.c``."""
    live, w = raw.shape
    s = counts.shape[1]
    W = 2 * w
    H = 1
    while H < 32 * w:
        H <<= 1
    hbits = 0
    t = H
    while t > 1:
        t >>= 1
        hbits += 1
    hshift = np.uint64(64 - hbits)
    hmask = np.int64(H - 1)

    bshift = 0
    while ((n - 1) >> bshift) >= _DECODE_BUCKETS:
        bshift += 1
    nb = ((n - 1) >> bshift) + 1

    # Hash entries are (row + 1) << 16 | slot; a probe match is
    # verified through pos[slot] (see _kernels.c for the layout
    # rationale).  The int32/int16 scratch mirrors the C kernel's
    # cache-footprint choices; values all fit (n <= 2^26, s <= 2^12).
    ht = np.zeros(H, dtype=np.uint32)
    pos = np.empty(W, dtype=np.int32)
    st = np.empty(W, dtype=np.int32)
    ni = np.empty(w, dtype=np.int32)
    nj = np.empty(w, dtype=np.int32)
    cum = np.empty(s, dtype=np.int32)
    bucket = np.empty(nb, dtype=np.int16)

    for row in range(live):
        crow = counts[row]
        tag = np.uint32(row + 1) << np.uint32(16)

        for k in range(w):
            rv = raw[row, k]
            a = rv // (n - 1)
            b = rv % (n - 1)
            if b >= a:
                b += 1
            pos[2 * k] = a
            pos[2 * k + 1] = b

        t_star = W
        prev = np.int64(-1)
        for slot in range(W):
            p = pos[slot]
            h = np.int64((np.uint64(p) * _HASH_MULT) >> hshift)
            while True:
                e = ht[h]
                if np.int64(e >> np.uint32(16)) != row + 1:
                    ht[h] = tag | np.uint32(slot)
                    break
                other = np.int64(e & np.uint32(0xFFFF))
                if pos[other] == p:
                    t_star = slot
                    prev = other
                    break
                h = (h + 1) & hmask
            if t_star < W:
                break

        rem = remaining[row]
        mc = t_star >> 1
        nclean = mc if mc < rem else rem
        coll = (t_star < W) and (mc < rem)
        consumed[row] = nclean + (1 if coll else 0)
        settled[row] = 0
        settle_step[row] = 0
        settle_prod[row] = 0
        decision[row] = -1

        ndec = 2 * mc + 2 if coll else 2 * nclean
        acc = np.int32(0)
        for k in range(s):
            acc += np.int32(crow[k])
            cum[k] = acc
        kk = 0
        for b in range(nb):
            p0 = np.int32(b << bshift)
            while cum[kk] <= p0:
                kk += 1
            bucket[b] = kk
        for slot in range(ndec):
            p = pos[slot]
            k = np.int64(bucket[p >> bshift])
            while cum[k] <= p:
                k += 1
            st[slot] = k

        c0 = np.int64(0)
        c1 = np.int64(0)
        c2 = np.int64(0)
        for k in range(s):
            c = crow[k]
            if c == 0:
                continue
            cl = cls[k]
            if cl == 0:
                c0 += c
            elif cl == 1:
                c1 += c
            else:
                c2 += c

        rp = np.int64(0)
        prod = np.int64(0)
        step = np.int64(0)
        done_row = False
        for k in range(nclean):
            i = st[2 * k]
            j = st[2 * k + 1]
            e = ptab[i * s + j]
            step += 1
            if not _pt_productive(e):
                ni[k] = i
                nj[k] = j
                continue
            xi = _pt_xi(e)
            yj = _pt_yj(e)
            ni[k] = xi
            nj[k] = yj
            rp += 1
            if done_row:
                continue
            crow[i] -= 1
            crow[j] -= 1
            crow[xi] += 1
            crow[yj] += 1
            c0 += ((e >> 33) & 7) - 2
            c1 += ((e >> 36) & 7) - 2
            c2 += ((e >> 39) & 7) - 2
            prod += 1
            if c0 == 0 and ((c1 == 0) != (c2 == 0)):
                done_row = True
                settled[row] = 1
                settle_step[row] = step
                settle_prod[row] = prod
                decision[row] = 1 if c2 > 0 else 0

        if coll:
            step += 1
            e0 = t_star & ~np.int64(1)
            ci = np.int64(0)
            cj = np.int64(0)
            for half in range(2):
                slot = e0 + half
                pslot = np.int64(-1)
                if slot == t_star:
                    pslot = prev
                else:
                    p = pos[slot]
                    h = np.int64((np.uint64(p) * _HASH_MULT)
                                 >> hshift)
                    while True:
                        e = ht[h]
                        if np.int64(e >> np.uint32(16)) != row + 1:
                            break
                        found = np.int64(e & np.uint32(0xFFFF))
                        if pos[found] == p:
                            if found != slot:
                                pslot = found
                            break
                        h = (h + 1) & hmask
                if pslot >= 0:
                    state = (nj[pslot >> 1] if (pslot & 1)
                             else ni[pslot >> 1])
                else:
                    state = st[slot]
                if half == 0:
                    ci = state
                else:
                    cj = state
            e = ptab[ci * s + cj]
            if _pt_productive(e):
                rp += 1
                if not done_row:
                    xi = _pt_xi(e)
                    yj = _pt_yj(e)
                    crow[ci] -= 1
                    crow[cj] -= 1
                    crow[xi] += 1
                    crow[yj] += 1
                    c0 += ((e >> 33) & 7) - 2
                    c1 += ((e >> 36) & 7) - 2
                    c2 += ((e >> 39) & 7) - 2
                    prod += 1
                    if c0 == 0 and ((c1 == 0) != (c2 == 0)):
                        settled[row] = 1
                        settle_step[row] = step
                        settle_prod[row] = prod
                        decision[row] = 1 if c2 > 0 else 0
        round_prod[row] = rp


@njit(cache=True)
def count_block(q, r, counts, ptab, cls, out):
    """One fused Fenwick sample+update block; see ``_kernels.c``."""
    s = counts.shape[0]
    block = q.shape[0]
    tree = np.zeros(s + 1, dtype=np.int64)
    for k in range(s):
        tree[k + 1] += counts[k]
        parent = (k + 1) + ((k + 1) & -(k + 1))
        if parent <= s:
            tree[parent] += tree[k + 1]
    log_size = 1
    while (log_size << 1) <= s:
        log_size <<= 1

    c0 = np.int64(0)
    c1 = np.int64(0)
    c2 = np.int64(0)
    for k in range(s):
        c = counts[k]
        if c == 0:
            continue
        cl = cls[k]
        if cl == 0:
            c0 += c
        elif cl == 1:
            c1 += c
        else:
            c2 += c

    steps = np.int64(0)
    productive = np.int64(0)
    is_settled = np.int64(0)
    for t in range(block):
        steps += 1
        # find(q[t])
        posn = 0
        rem = q[t]
        step = log_size
        while step > 0:
            cand = posn + step
            if cand <= s and tree[cand] <= rem:
                posn = cand
                rem -= tree[cand]
            step >>= 1
        i = posn
        idx = i + 1
        while idx <= s:
            tree[idx] -= 1
            idx += idx & -idx
        posn = 0
        rem = r[t]
        step = log_size
        while step > 0:
            cand = posn + step
            if cand <= s and tree[cand] <= rem:
                posn = cand
                rem -= tree[cand]
            step >>= 1
        j = posn
        idx = i + 1
        while idx <= s:
            tree[idx] += 1
            idx += idx & -idx
        e = ptab[i * s + j]
        if not _pt_productive(e):
            continue
        productive += 1
        xi = _pt_xi(e)
        yj = _pt_yj(e)
        counts[i] -= 1
        counts[j] -= 1
        counts[xi] += 1
        counts[yj] += 1
        for index, delta in ((i, -1), (j, -1), (xi, 1), (yj, 1)):
            idx = index + 1
            while idx <= s:
                tree[idx] += delta
                idx += idx & -idx
        c0 += ((e >> 33) & 7) - 2
        c1 += ((e >> 36) & 7) - 2
        c2 += ((e >> 39) & 7) - 2
        if c0 == 0 and ((c1 == 0) != (c2 == 0)):
            is_settled = 1
            break
    out[0] = steps
    out[1] = productive
    out[2] = is_settled


@njit(cache=True)
def batch_match(chosen, agents, dense, ptab):
    """The batch engine's matching step; see ``_kernels.c``."""
    k = chosen.shape[0] // 2
    s = dense.shape[0]
    changed = np.int64(0)
    for t in range(k):
        u = chosen[t]
        v = chosen[k + t]
        i = agents[u]
        j = agents[v]
        e = ptab[i * s + j]
        if _pt_productive(e):
            changed += 1
            xi = _pt_xi(e)
            yj = _pt_yj(e)
            agents[u] = xi
            agents[v] = yj
            dense[i] -= 1
            dense[j] -= 1
            dense[xi] += 1
            dense[yj] += 1
    return changed


class _Kernels:
    backend = "numba"
    library_path = None

    ensemble_round = staticmethod(ensemble_round)
    count_block = staticmethod(count_block)
    batch_match = staticmethod(batch_match)


def load():
    """The numba kernel namespace (module import already proved numba)."""
    return _Kernels
