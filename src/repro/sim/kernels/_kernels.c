/* Compiled hot loops for the repro simulation engines.
 *
 * One translation unit, three kernels, no Python.h: the library is
 * built with the system C compiler and bound through ctypes (see
 * cext_backend.py), so the only ABI surface is plain int64 buffers.
 * Every kernel is a bit-exact transliteration of the corresponding
 * numpy inner loop -- the RNG draws stay on the Python side (the
 * stream must be identical to the numpy engines'), and the kernels
 * only consume pre-drawn raw values.
 *
 *   repro_ensemble_round  -- the count-ensemble collision-bounded
 *                            window step (count_ensemble_engine.py's
 *                            per-round sort/cut/apply, re-expressed as
 *                            a hash-based first-retouch scan plus a
 *                            sequential prefix apply with exact settle
 *                            detection);
 *   repro_count_block     -- the count engine's fused Fenwick-tree
 *                            sample+update loop over one block of
 *                            pre-drawn targets;
 *   repro_batch_match     -- the batch engine's matching step
 *                            (gather, table lookup, scatter,
 *                            incremental count update).
 *
 * All three take the packed transition table built by
 * repro.sim.kernels.pack_transition_table: one int64 per ordered
 * state pair holding the successor states, the productive flag, and
 * the unanimity-class count deltas (see PT_* below), so the apply
 * loops do a single table load per interaction.
 *
 * Numeric contracts (guarded on the Python side):
 *   n  <= 2^26   so n(n-1) < 2^52 (exact double divmod) and positions
 *                fit the int32 scratch arrays;
 *   live < 2^16  so the row epoch fits a hash entry's top half;
 *   W  <  2^16   so the slot index fits a hash entry's bottom half
 *                (follows from the 4096 window cap);
 *   s  <= 2^12   successor states fit the packed table's 16-bit
 *                fields.
 */

#include <stdint.h>
#include <stdlib.h>

#define EXPORT __attribute__((visibility("default")))

/* Packed transition-table fields (must match pack_transition_table):
 * bits 0..15 successor initiator state, 16..31 successor responder
 * state, 32 productive flag, 33..35 / 36..38 / 39..41 the biased
 * (delta + 2) unanimity-class count deltas for classes 0 / 1 / 2. */
#define PT_XI(e) ((e) & 0xFFFF)
#define PT_YJ(e) (((e) >> 16) & 0xFFFF)
#define PT_PRODUCTIVE(e) (((e) >> 32) & 1)
#define PT_DC0(e) ((((e) >> 33) & 7) - 2)
#define PT_DC1(e) ((((e) >> 36) & 7) - 2)
#define PT_DC2(e) ((((e) >> 39) & 7) - 2)

/* Exact floor divmod of v by d for 0 <= v < 2^52, d >= 1: one double
 * multiply plus a one-step correction replaces the ~25-cycle hardware
 * divide.  The double quotient is within 1 of the true quotient for
 * operands below 2^52, so a single fix-up suffices. */
static inline int64_t divmod_fast(int64_t v, int64_t d, double inv,
                                  int64_t *rem)
{
    int64_t q = (int64_t)((double)v * inv);
    int64_t r = v - q * d;
    if (r < 0) {
        q -= 1;
        r += d;
    } else if (r >= d) {
        q += 1;
        r -= d;
    }
    *rem = r;
    return q;
}

/* Position -> state decode against the inclusive prefix sums cum
 * (cum[s-1] = n, 0 <= p < n): smallest k with cum[k] > p.  A bucket
 * LUT over the position space gives the scan's start point, so the
 * expected advance is far below one step (at most s boundaries are
 * spread over the buckets); the result is identical to a binary
 * search for every bshift. */
#define DECODE_BUCKETS 2048

static inline int64_t decode_pos(const int32_t *cum,
                                 const int16_t *bucket, int bshift,
                                 int32_t p)
{
    int64_t k = bucket[p >> bshift];
    while (cum[k] <= p)
        k++;
    return k;
}

/* Hash entries are 32 bits -- (row + 1) << 16 | slot -- and the
 * position a slot refers to lives in pos[slot], so a probe match is
 * verified with one extra pos[] load instead of widening the entry.
 * The row epoch in the top half makes clearing free (stale entries
 * from earlier rows are claimed lazily); H = 32w keeps chains short
 * enough that the probe loop's branch is almost always right. */
#define HASH_MULT 0x9E3779B97F4A7C15ULL

/* The collision-bounded window step for one round, all rows.
 *
 * Inputs:
 *   raw        (live, w) int64, fresh uniform draws from [0, n(n-1))
 *   counts     (live, s) int64, mutated in place
 *   remaining  (live,)   per-row interaction budget left (>= 1)
 *   ptab       flat (s*s,) packed transition table (PT_* fields)
 *   cls        (s,) unanimity class per state (0 undecided / 1 / 2)
 * Outputs (live,) each:
 *   consumed     interactions consumed this round (incl. collision)
 *   round_prod   productive interactions this round (full prefix --
 *                counting continues past a settle, matching the numpy
 *                path's round_prod, so the caller's productive
 *                bookkeeping cancels exactly)
 *   settled / settle_step / settle_prod / decision
 *                exact in-round settle point when the row reached
 *                unanimity (settle_step is 1-based within the round)
 *
 * Settled rows stop *applying* at the settle step, so their count row
 * is the exact settle configuration (the caller retires them); their
 * consumed/round_prod keep full-round values because the numpy path's
 * window adaptation and step accounting use them for every row.
 */
EXPORT void repro_ensemble_round(
    const int64_t *raw, int64_t live, int64_t w, int64_t n, int64_t s,
    int64_t *counts, const int64_t *remaining,
    const int64_t *ptab, const int64_t *cls,
    int64_t *consumed, int64_t *round_prod, int64_t *settled,
    int64_t *settle_step, int64_t *settle_prod, int64_t *decision)
{
    const int64_t W = 2 * w;
    int64_t H = 1;
    while (H < 32 * w)
        H <<= 1;
    int hbits = 0;
    for (int64_t t = H; t > 1; t >>= 1)
        hbits++;
    const int hshift = 64 - hbits;
    const uint64_t hmask = (uint64_t)H - 1;

    int bshift = 0;
    while (((n - 1) >> bshift) >= DECODE_BUCKETS)
        bshift++;
    const int64_t nb = ((n - 1) >> bshift) + 1;

    uint32_t *ht = calloc((size_t)H, sizeof(uint32_t));
    int32_t *pos = malloc((size_t)W * sizeof(int32_t));
    int32_t *st = malloc((size_t)W * sizeof(int32_t));
    int32_t *ni = malloc((size_t)w * sizeof(int32_t));
    int32_t *nj = malloc((size_t)w * sizeof(int32_t));
    int32_t *cum = malloc((size_t)s * sizeof(int32_t));
    int16_t *bucket = malloc((size_t)nb * sizeof(int16_t));
    const double inv = 1.0 / (double)(n - 1);

    for (int64_t row = 0; row < live; row++) {
        const int64_t *rr = raw + row * w;
        int64_t *crow = counts + row * s;
        const uint32_t tag = (uint32_t)(row + 1) << 16;

        /* positions: even slots initiators, odd slots responders */
        for (int64_t t = 0; t < W; t += 2) {
            int64_t b;
            int64_t a = divmod_fast(rr[t >> 1], n - 1, inv, &b);
            b += (b >= a);
            pos[t] = (int32_t)a;
            pos[t + 1] = (int32_t)b;
        }

        /* first re-touch: insert slots in time order; the first slot
         * whose position is already present is t_star, and the stored
         * entry is its (unique) previous occurrence.  Stale entries
         * from earlier rows are claimed lazily via the epoch tag. */
        int64_t t_star = W, prev = -1;
        for (int64_t t = 0; t < W; t++) {
            const uint64_t p = (uint64_t)(uint32_t)pos[t];
            uint64_t h = (p * HASH_MULT) >> hshift;
            for (;;) {
                const uint32_t e = ht[h];
                if ((e >> 16) != (uint32_t)(row + 1)) {
                    ht[h] = tag | (uint32_t)t;
                    break;
                }
                const int64_t other = e & 0xFFFF;
                if (pos[other] == (int32_t)p) {
                    t_star = t;
                    prev = other;
                    break;
                }
                h = (h + 1) & hmask;
            }
            if (t_star < W)
                break;
        }

        const int64_t rem = remaining[row];
        const int64_t mc = t_star >> 1;
        const int64_t nclean = mc < rem ? mc : rem;
        const int coll = (t_star < W) && (mc < rem);
        consumed[row] = nclean + (coll ? 1 : 0);
        settled[row] = 0;
        settle_step[row] = 0;
        settle_prod[row] = 0;
        decision[row] = -1;

        /* decode every needed slot against the round-start cumulative
         * counts (decoding must finish before any apply). */
        const int64_t ndec = coll ? 2 * mc + 2 : 2 * nclean;
        int32_t acc = 0;
        for (int64_t k = 0; k < s; k++) {
            acc += (int32_t)crow[k];
            cum[k] = acc;
        }
        {
            int64_t k = 0;
            for (int64_t b = 0; b < nb; b++) {
                const int32_t p0 = (int32_t)(b << bshift);
                while (cum[k] <= p0)
                    k++;
                bucket[b] = (int16_t)k;
            }
        }
        for (int64_t t = 0; t < ndec; t++)
            st[t] = (int32_t)decode_pos(cum, bucket, bshift, pos[t]);

        /* unanimity class counters at round start */
        int64_t c0 = 0, c1 = 0, c2 = 0;
        for (int64_t k = 0; k < s; k++) {
            const int64_t c = crow[k];
            if (!c)
                continue;
            const int64_t cl = cls[k];
            if (cl == 0)
                c0 += c;
            else if (cl == 1)
                c1 += c;
            else
                c2 += c;
        }

        /* sequential apply of the collision-free prefix.  Transitions
         * on disjoint agents commute, so applying in slot order with
         * round-start decodes IS the sequential chain; checking
         * unanimity after each productive step therefore finds the
         * exact settling interaction (unanimity is absorbing). */
        int64_t rp = 0, prod = 0, step = 0;
        int done_row = 0;
        for (int64_t k = 0; k < nclean; k++) {
            const int64_t i = st[2 * k], j = st[2 * k + 1];
            const int64_t e = ptab[i * s + j];
            step++;
            if (!PT_PRODUCTIVE(e)) {
                ni[k] = (int32_t)i;
                nj[k] = (int32_t)j;
                continue;
            }
            const int64_t xi = PT_XI(e), yj = PT_YJ(e);
            ni[k] = (int32_t)xi;
            nj[k] = (int32_t)yj;
            rp++;
            if (done_row)
                continue;
            crow[i]--;
            crow[j]--;
            crow[xi]++;
            crow[yj]++;
            c0 += PT_DC0(e);
            c1 += PT_DC1(e);
            c2 += PT_DC2(e);
            prod++;
            if (c0 == 0 && ((c1 == 0) != (c2 == 0))) {
                done_row = 1;
                settled[row] = 1;
                settle_step[row] = step;
                settle_prod[row] = prod;
                decision[row] = c2 > 0 ? 1 : 0;
            }
        }

        /* the colliding interaction: each of its two slots resolves to
         * the post-state of its previous occurrence's interaction when
         * one exists (looked up in the hash table, which holds exactly
         * slots 0..t_star-1), else to its round-start decode. */
        if (coll) {
            step++;
            const int64_t e0 = t_star & ~(int64_t)1;
            int64_t cs[2];
            for (int k = 0; k < 2; k++) {
                const int64_t slot = e0 + k;
                int64_t pslot = -1;
                if (slot == t_star) {
                    pslot = prev;
                } else {
                    const uint64_t p = (uint64_t)(uint32_t)pos[slot];
                    uint64_t h = (p * HASH_MULT) >> hshift;
                    for (;;) {
                        const uint32_t e = ht[h];
                        if ((e >> 16) != (uint32_t)(row + 1))
                            break;
                        const int64_t found = e & 0xFFFF;
                        if (pos[found] == (int32_t)p) {
                            if (found != slot)
                                pslot = found;
                            break;
                        }
                        h = (h + 1) & hmask;
                    }
                }
                cs[k] = pslot >= 0
                    ? ((pslot & 1) ? nj[pslot >> 1] : ni[pslot >> 1])
                    : st[slot];
            }
            const int64_t ci = cs[0], cj = cs[1];
            const int64_t e = ptab[ci * s + cj];
            if (PT_PRODUCTIVE(e)) {
                rp++;
                if (!done_row) {
                    const int64_t xi = PT_XI(e), yj = PT_YJ(e);
                    crow[ci]--;
                    crow[cj]--;
                    crow[xi]++;
                    crow[yj]++;
                    c0 += PT_DC0(e);
                    c1 += PT_DC1(e);
                    c2 += PT_DC2(e);
                    prod++;
                    if (c0 == 0 && ((c1 == 0) != (c2 == 0))) {
                        settled[row] = 1;
                        settle_step[row] = step;
                        settle_prod[row] = prod;
                        decision[row] = c2 > 0 ? 1 : 0;
                    }
                }
            }
        }
        round_prod[row] = rp;
    }

    free(ht);
    free(pos);
    free(st);
    free(ni);
    free(nj);
    free(cum);
    free(bucket);
}

/* Fenwick helpers over a one-based tree array (index 0 unused),
 * transliterated from repro.sim.fenwick.FenwickTree. */
static inline void fen_add(int64_t *tree, int64_t size, int64_t index,
                           int64_t delta)
{
    for (int64_t i = index + 1; i <= size; i += i & -i)
        tree[i] += delta;
}

static inline int64_t fen_find(const int64_t *tree, int64_t size,
                               int64_t log_size, int64_t target)
{
    int64_t pos = 0, rem = target;
    for (int64_t step = log_size; step > 0; step >>= 1) {
        const int64_t cand = pos + step;
        if (cand <= size && tree[cand] <= rem) {
            pos = cand;
            rem -= tree[cand];
        }
    }
    return pos;
}

/* One block of the count engine's sample+update loop.  q/r are the
 * block's pre-split divmod targets (drawn by numpy on the Python
 * side); counts is mutated in place.  Stops at the exact settling
 * interaction.  out = {steps_done, productive, settled}. */
EXPORT void repro_count_block(
    const int64_t *q, const int64_t *r, int64_t block,
    int64_t *counts, int64_t s,
    const int64_t *ptab, const int64_t *cls,
    int64_t *out)
{
    int64_t *tree = calloc((size_t)(s + 1), sizeof(int64_t));
    for (int64_t k = 0; k < s; k++) {
        tree[k + 1] += counts[k];
        const int64_t parent = (k + 1) + ((k + 1) & -(k + 1));
        if (parent <= s)
            tree[parent] += tree[k + 1];
    }
    int64_t log_size = 1;
    while ((log_size << 1) <= s)
        log_size <<= 1;

    int64_t c0 = 0, c1 = 0, c2 = 0;
    for (int64_t k = 0; k < s; k++) {
        const int64_t c = counts[k];
        if (!c)
            continue;
        const int64_t cl = cls[k];
        if (cl == 0)
            c0 += c;
        else if (cl == 1)
            c1 += c;
        else
            c2 += c;
    }

    int64_t steps = 0, productive = 0, settled = 0;
    for (int64_t t = 0; t < block; t++) {
        steps++;
        const int64_t i = fen_find(tree, s, log_size, q[t]);
        fen_add(tree, s, i, -1);          /* without replacement */
        const int64_t j = fen_find(tree, s, log_size, r[t]);
        fen_add(tree, s, i, 1);
        const int64_t e = ptab[i * s + j];
        if (!PT_PRODUCTIVE(e))
            continue;
        productive++;
        const int64_t xi = PT_XI(e), yj = PT_YJ(e);
        counts[i]--;
        counts[j]--;
        counts[xi]++;
        counts[yj]++;
        fen_add(tree, s, i, -1);
        fen_add(tree, s, j, -1);
        fen_add(tree, s, xi, 1);
        fen_add(tree, s, yj, 1);
        c0 += PT_DC0(e);
        c1 += PT_DC1(e);
        c2 += PT_DC2(e);
        if (c0 == 0 && ((c1 == 0) != (c2 == 0))) {
            settled = 1;
            break;
        }
    }
    out[0] = steps;
    out[1] = productive;
    out[2] = settled;
    free(tree);
}

/* The batch engine's matching step: chosen holds 2k distinct agent
 * indices (initiators first), agents/dense are mutated in place.
 * Returns the number of pairs whose transition changed a state. */
EXPORT int64_t repro_batch_match(
    const int64_t *chosen, int64_t k,
    int64_t *agents, int64_t *dense, int64_t s,
    const int64_t *ptab)
{
    int64_t changed = 0;
    for (int64_t t = 0; t < k; t++) {
        const int64_t u = chosen[t], v = chosen[k + t];
        const int64_t i = agents[u], j = agents[v];
        const int64_t e = ptab[i * s + j];
        if (PT_PRODUCTIVE(e)) {
            changed++;
            const int64_t xi = PT_XI(e), yj = PT_YJ(e);
            agents[u] = xi;
            agents[v] = yj;
            dense[i]--;
            dense[j]--;
            dense[xi]++;
            dense[yj]++;
        }
    }
    return changed;
}
