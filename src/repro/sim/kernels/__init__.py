"""Compiled kernel backends for the hot simulation loops.

The three hottest paths in the repo — the count-ensemble engine's
collision-bounded window step, the count engine's Fenwick-tree
sample+update loop, and the batch engine's matching step — have
compiled twins registered as ``count-ensemble-jit`` / ``count-jit`` /
``batch-jit`` (see :mod:`repro.sim.engines`).  Two interchangeable
backends provide the same three kernels:

``numba``
    ``@njit`` kernels (:mod:`.numba_backend`); requires the ``[jit]``
    optional extra.  Preferred when importable.
``cext``
    A dependency-free C translation unit compiled on demand with the
    system C compiler and bound through ctypes
    (:mod:`.cext_backend`).  Used when numba is absent but a compiler
    exists.

Both are bit-exact against the numpy engines: all RNG draws stay in
numpy (identical streams), and the kernels only consume pre-drawn
values.  When neither backend is usable the JIT engine names resolve
to the numpy implementations and an ``engine.fallback`` telemetry
event records why — behaviour (including every pinned baseline) is
unchanged, only slower.

``REPRO_JIT`` overrides detection: ``off``/``0``/``none`` disables
both backends, ``numba`` or ``cext`` forces one (unusable forced
backends fall back like absence).
"""

from __future__ import annotations

import importlib.util
import os

__all__ = [
    "BACKENDS",
    "MAX_KERNEL_N",
    "MAX_KERNEL_TRIALS",
    "JIT_UPGRADES",
    "available",
    "default_backend",
    "fallback_reason",
    "jit_engine_name",
    "load",
    "pack_transition_table",
    "reset_backend_cache",
    "warm_up",
    "warm_up_for_spec",
]

#: Probe order: numba wins when importable, the C extension otherwise.
BACKENDS = ("numba", "cext")

#: Population bound for the compiled ensemble round: positions must
#: fit the packed hash entries' 34-bit field and ``n(n-1)`` must stay
#: below 2^52 for the exact double divmod.  Beyond it (far past paper
#: scale) the engine inherits the numpy path.
MAX_KERNEL_N = 1 << 26

#: Row bound for the compiled ensemble round (epoch tag width).  Chunk
#: sizes are ENSEMBLE_CHUNK_TRIALS = 128, so this never binds in
#: practice.
MAX_KERNEL_TRIALS = 1 << 15

#: ``"auto"`` upgrades: numpy engine name -> JIT twin.  The token
#: ensemble and the approximate batch engine are deliberately absent —
#: the former has no compiled kernel, the latter is never chosen
#: implicitly.
JIT_UPGRADES = {
    "count": "count-jit",
    "count-ensemble": "count-ensemble-jit",
}

_state: dict = {"probed": False, "backend": None, "reason": None,
                "mods": {}}


def reset_backend_cache() -> None:
    """Forget probe results (tests flip ``REPRO_JIT`` / fake imports)."""
    _state.update(probed=False, backend=None, reason=None, mods={})


def _env_choice() -> str | None:
    return os.environ.get("REPRO_JIT", "").strip().lower() or None


def _try_load(backend: str):
    """``(kernels, error_message)`` for one backend, memoized."""
    cached = _state["mods"].get(backend)
    if cached is not None:
        return cached
    try:
        if backend == "numba":
            if importlib.util.find_spec("numba") is None:
                raise ImportError("numba is not installed")
            from . import numba_backend
            result = (numba_backend.load(), None)
        elif backend == "cext":
            from . import cext_backend
            result = (cext_backend.load(), None)
        else:
            result = (None, f"unknown kernel backend {backend!r}")
    except Exception as exc:  # ImportError, KernelBuildError, OSError
        result = (None, f"{backend}: {exc}")
    _state["mods"][backend] = result
    return result


def _probe() -> None:
    if _state["probed"]:
        return
    choice = _env_choice()
    if choice in ("off", "0", "none", "false"):
        _state.update(probed=True, backend=None,
                      reason="kernel backends disabled by REPRO_JIT")
        return
    order = (choice,) if choice in BACKENDS else BACKENDS
    errors = []
    for backend in order:
        kernels, error = _try_load(backend)
        if kernels is not None:
            _state.update(probed=True, backend=backend, reason=None)
            return
        errors.append(error)
    _state.update(probed=True, backend=None,
                  reason="no usable kernel backend (install the [jit] "
                         "extra or a C compiler): " + "; ".join(errors))


def default_backend() -> str | None:
    """The preferred usable backend name, or ``None``.

    The first call pays the probe (numba import, or a cached C
    build); later calls are a dict lookup.
    """
    _probe()
    return _state["backend"]


def fallback_reason() -> str:
    """Why no backend is usable (only meaningful when none is)."""
    _probe()
    return _state["reason"] or "kernel backend available"


def available() -> dict[str, bool]:
    """Usability per backend name, actually attempting each load."""
    return {backend: _try_load(backend)[0] is not None
            for backend in BACKENDS}


def load(backend: str | None = None):
    """The kernel namespace for ``backend`` (default: the probed one).

    Raises :class:`ImportError` when the requested backend — or, with
    ``backend=None``, every backend — is unusable.
    """
    if backend is None:
        backend = default_backend()
        if backend is None:
            raise ImportError(fallback_reason())
    kernels, error = _try_load(backend)
    if kernels is None:
        raise ImportError(error)
    return kernels


def pack_transition_table(table_x, table_y, state_class):
    """Pack the flat transition tables into one int64 per state pair.

    Entry layout (mirrored by the ``PT_*`` macros in ``_kernels.c``
    and the numba kernels): bits 0..15 successor initiator state,
    16..31 successor responder state, 32 the productive flag, and
    33..35 / 36..38 / 39..41 the biased ``delta + 2`` unanimity-class
    count deltas for classes 0 / 1 / 2.  One load per interaction
    replaces two successor lookups plus four class lookups in the
    kernels' apply loops.  Requires ``s <= 4096`` (the registry-wide
    dense-table bound), so successor states fit their 16-bit fields.
    """
    import numpy as np

    xi = np.ascontiguousarray(table_x, dtype=np.int64)
    yj = np.ascontiguousarray(table_y, dtype=np.int64)
    cls = np.ascontiguousarray(state_class, dtype=np.int64)
    s = cls.shape[0]
    i = np.repeat(np.arange(s, dtype=np.int64), s)
    j = np.tile(np.arange(s, dtype=np.int64), s)
    packed = xi | (yj << 16)
    packed |= ((xi != i) | (yj != j)).astype(np.int64) << 32
    for bit, c in ((33, 0), (36, 1), (39, 2)):
        delta = ((cls[xi] == c).astype(np.int64) + (cls[yj] == c)
                 - (cls[i] == c) - (cls[j] == c))
        packed |= (delta + 2) << bit
    return np.ascontiguousarray(packed)


def jit_engine_name(name: str) -> str:
    """``name``'s JIT twin when a backend is usable, else ``name``."""
    upgraded = JIT_UPGRADES.get(name)
    if upgraded is None:
        return name
    return upgraded if default_backend() is not None else name


def warm_up(backend: str | None = None) -> str | None:
    """Compile/load the kernels now; return the backend name or None.

    For numba this triggers (cached) JIT compilation of all three
    kernels on tiny inputs, so pool workers never pay compile time
    inside a job.  Never raises: an unusable backend returns ``None``.
    """
    import numpy as np

    try:
        kernels = load(backend)
    except ImportError:
        return None
    if getattr(kernels, "_warm", False):
        return kernels.backend
    tx = np.array([0, 0, 1, 1], dtype=np.int64)  # 2-state null protocol
    ty = np.array([0, 1, 0, 1], dtype=np.int64)
    cls = np.array([1, 2], dtype=np.int64)
    ptab = pack_transition_table(tx, ty, cls)
    counts = np.array([[1, 1]], dtype=np.int64)
    outs = [np.zeros(1, dtype=np.int64) for _ in range(6)]
    kernels.ensemble_round(np.zeros((1, 1), dtype=np.int64), counts,
                           np.full(1, 8, dtype=np.int64), 2,
                           ptab, cls, *outs)
    counts1 = np.array([1, 1], dtype=np.int64)
    kernels.count_block(np.zeros(1, dtype=np.int64),
                        np.zeros(1, dtype=np.int64), counts1,
                        ptab, cls, np.zeros(3, dtype=np.int64))
    kernels.batch_match(np.array([0, 1], dtype=np.int64),
                        np.array([0, 1], dtype=np.int64),
                        counts1, ptab)
    kernels._warm = True
    return kernels.backend


def warm_up_for_spec(spec) -> None:
    """Pool-initializer hook: warm the kernels a spec will use.

    Called once per worker process (never per chunk).  Only engines
    that can resolve to a JIT implementation trigger a warm-up; plain
    numpy specs cost one string check.
    """
    engine = getattr(spec, "engine", None)
    name = engine if isinstance(engine, str) else \
        getattr(engine, "name", "")
    if name.endswith("-jit"):
        warm_up()
    elif name == "auto" and default_backend() is not None:
        warm_up()
