"""C-extension kernel backend: compile on demand, bind via ctypes.

ROADMAP item 2 allows either numba ``@njit`` kernels *or* "a small C
extension"; this module is the latter.  ``_kernels.c`` is compiled
once with the system C compiler into a content-addressed shared
object under the user cache directory (keyed by a hash of the source,
so editing the source triggers a rebuild and concurrent builders race
benignly through an atomic rename), then loaded with ctypes.  No
Python.h, no build-time dependency beyond a working ``cc``.

The wrappers below expose the same three callables as
:mod:`repro.sim.kernels.numba_backend` — ``ensemble_round``,
``count_block``, ``batch_match`` — taking C-contiguous int64 numpy
arrays.  Contracts (shapes, value ranges) are documented in
``_kernels.c``; the wrappers assert only what ctypes cannot survive
without (dtype and contiguity).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path

import numpy as np

__all__ = ["KernelBuildError", "build", "load"]

_SOURCE = Path(__file__).with_name("_kernels.c")


class KernelBuildError(RuntimeError):
    """The kernel shared object could not be compiled or loaded."""


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "kernels"


def build(force: bool = False) -> Path:
    """Compile ``_kernels.c`` (if needed) and return the ``.so`` path."""
    source = _SOURCE.read_bytes()
    tag = hashlib.sha256(source).hexdigest()[:16]
    target = _cache_dir() / f"repro_kernels_{tag}.so"
    if target.exists() and not force:
        return target
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=target.parent)
        os.close(fd)
    except OSError as exc:
        raise KernelBuildError(
            f"cannot create kernel cache dir {target.parent}: {exc}"
        ) from exc
    cc = os.environ.get("CC", "cc")
    base_cmd = [cc, "-O3", "-fPIC", "-shared", str(_SOURCE), "-o", tmp]
    try:
        # -march=native first for the wide multiplies and cmovs; retry
        # plain -O3 for compilers/targets that reject the flag.
        attempts = [base_cmd[:1] + ["-march=native"] + base_cmd[1:],
                    base_cmd]
        last = None
        for cmd in attempts:
            last = subprocess.run(cmd, capture_output=True, text=True)
            if last.returncode == 0:
                break
        if last is None or last.returncode != 0:
            stderr = last.stderr.strip() if last is not None else ""
            raise KernelBuildError(
                f"kernel compilation failed with {cc!r}: {stderr}")
        os.replace(tmp, target)
    except FileNotFoundError as exc:
        raise KernelBuildError(
            f"C compiler {cc!r} not found; install one or use the "
            "numba backend (pip install -e .[jit])") from exc
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return target


_I64 = ctypes.c_int64
_P = ctypes.c_void_p


def _ptr(array: np.ndarray) -> int:
    assert array.dtype == np.int64 and array.flags["C_CONTIGUOUS"], \
        f"kernel arrays must be C-contiguous int64, got {array.dtype}"
    return array.ctypes.data


def load():
    """Build/load the shared object; return the kernel namespace.

    Raises :class:`KernelBuildError` when no compiler is available or
    the build fails — callers treat that as "backend unusable" and
    fall back.
    """
    path = build()
    try:
        lib = ctypes.CDLL(str(path))
    except OSError as exc:
        raise KernelBuildError(
            f"cannot load kernel library {path}: {exc}") from exc

    lib.repro_ensemble_round.restype = None
    lib.repro_ensemble_round.argtypes = [
        _P, _I64, _I64, _I64, _I64, _P, _P, _P, _P,
        _P, _P, _P, _P, _P, _P]
    lib.repro_count_block.restype = None
    lib.repro_count_block.argtypes = [_P, _P, _I64, _P, _I64,
                                      _P, _P, _P]
    lib.repro_batch_match.restype = _I64
    lib.repro_batch_match.argtypes = [_P, _I64, _P, _P, _I64, _P]

    def ensemble_round(raw, counts, remaining, n, ptab, cls,
                       consumed, round_prod, settled, settle_step,
                       settle_prod, decision):
        live, w = raw.shape
        lib.repro_ensemble_round(
            _ptr(raw), live, w, n, counts.shape[1], _ptr(counts),
            _ptr(remaining), _ptr(ptab), _ptr(cls),
            _ptr(consumed), _ptr(round_prod), _ptr(settled),
            _ptr(settle_step), _ptr(settle_prod), _ptr(decision))

    def count_block(q, r, counts, ptab, cls, out):
        lib.repro_count_block(_ptr(q), _ptr(r), len(q), _ptr(counts),
                              len(counts), _ptr(ptab), _ptr(cls),
                              _ptr(out))

    def batch_match(chosen, agents, dense, ptab):
        return int(lib.repro_batch_match(
            _ptr(chosen), len(chosen) // 2, _ptr(agents), _ptr(dense),
            len(dense), _ptr(ptab)))

    class _Kernels:
        backend = "cext"
        library_path = str(path)

    _Kernels.ensemble_round = staticmethod(ensemble_round)
    _Kernels.count_block = staticmethod(count_block)
    _Kernels.batch_match = staticmethod(batch_match)
    return _Kernels
