"""Engines that route their hot loops through compiled kernels.

Each class subclasses its numpy twin and overrides exactly one inner
loop; validation, budget resolution, fault handling, guards, and
result assembly are inherited, so capability errors (adversarial
schedulers, bulk-path blockers) and the faulted paths are *the same
code* as the numpy engines.  The compiled loops are bit-exact: RNG
draws stay in numpy with identical call shapes and order, so a JIT
engine returns byte-identical results to its twin for every seed —
pinned baselines, KS suites, and runstore fingerprints all extend
unchanged (the requested engine name keys the cache; see
``docs/engines.md``).

Construction requires a usable kernel backend (raises
:class:`ImportError` otherwise); the registry factories in
:mod:`repro.sim.engines` check availability first and fall back to
the numpy twin with an ``engine.fallback`` telemetry event, so
``engine="count-ensemble-jit"`` is safe to request anywhere.
"""

from __future__ import annotations

import math
import time

import numpy as np

from ..batch_engine import BatchEngine
from ..convergence import UnanimitySettleTracker
from ..count_engine import _BLOCK, CountEngine
from ..count_ensemble_engine import (
    CountEnsembleEngine,
    _MIN_WINDOW,
    _max_window,
)
from ..engine import check_budget_sanity
from ..engines import ENSEMBLE_MAX_STATES
from ..ensemble_common import (
    class_tables,
    emit_chunk_telemetry,
    flat_transition_tables,
)
from . import (
    MAX_KERNEL_N,
    MAX_KERNEL_TRIALS,
    load,
    pack_transition_table,
)

__all__ = ["JitCountEngine", "JitCountEnsembleEngine", "JitBatchEngine"]


class _KernelTablesMixin:
    """Shared per-engine cache of the packed kernel tables."""

    def _kernel_tables(self):
        cached = getattr(self, "_kernel_tables_cache", None)
        if cached is None:
            table_x, table_y, _, _ = flat_transition_tables(self.protocol)
            state_class, _ = class_tables(self.protocol)
            cls = np.ascontiguousarray(state_class, dtype=np.int64)
            cached = (pack_transition_table(table_x, table_y, cls), cls)
            self._kernel_tables_cache = cached
        return cached


class _JitCountLoopMixin(_KernelTablesMixin):
    """The fused Fenwick sample+update block, compiled.

    The fast path applies when nothing needs per-interaction Python
    callbacks: no recorder, the plain O(1) unanimity tracker (not the
    generic or observing ones), and a state space small enough for the
    dense transition table.  Anything else inherits the numpy loop —
    which draws the identical RNG stream, so either path returns the
    same result.
    """

    def _simulate(self, counts, n, rng, max_steps, tracker, recorder):
        if (recorder is not None
                or type(tracker) is not UnanimitySettleTracker
                or self.protocol.num_states > ENSEMBLE_MAX_STATES):
            return super()._simulate(counts, n, rng, max_steps,
                                     tracker, recorder)
        check_budget_sanity(max_steps)
        ptab, state_class = self._kernel_tables()
        count_block = self._kernels.count_block
        vec = np.array(counts, dtype=np.int64)
        out = np.zeros(3, dtype=np.int64)
        steps = 0
        productive = 0
        span = n * (n - 1)
        div_buf = np.empty(_BLOCK, dtype=np.int64)
        mod_buf = np.empty(_BLOCK, dtype=np.int64)
        while steps < max_steps:
            block = min(_BLOCK, max_steps - steps)
            # Identical RNG call shapes/order to CountEngine._simulate.
            raw = rng.integers(0, span, size=block, dtype=np.int64)
            q = div_buf if block == _BLOCK else div_buf[:block]
            r = mod_buf if block == _BLOCK else mod_buf[:block]
            np.floor_divide(raw, n - 1, out=q)
            np.remainder(raw, n - 1, out=r)
            count_block(q, r, vec, ptab, state_class, out)
            steps += int(out[0])
            productive += int(out[1])
            if out[2]:
                break
        counts[:] = vec.tolist()
        tracker.reset(counts)
        return steps, productive, False, None


class JitCountEngine(_JitCountLoopMixin, CountEngine):
    """:class:`CountEngine` with the sample+update loop compiled."""

    name = "count-jit"

    def __init__(self, protocol, *, backend: str | None = None):
        super().__init__(protocol)
        self._kernels = load(backend)


class JitCountEnsembleEngine(_JitCountLoopMixin, CountEnsembleEngine):
    """:class:`CountEnsembleEngine` with the window step compiled.

    Only the clean collision-bounded round is compiled; the faulted
    windowed loop, the single-run path's guards, and every capability
    error are inherited numpy code.
    """

    name = "count-ensemble-jit"

    def __init__(self, protocol, *, backend: str | None = None):
        super().__init__(protocol)
        self._kernels = load(backend)

    def _run_ensemble_clean(self, base, n, num_trials, budget, generator,
                            telemetry, started, row_result, state_class,
                            class_matrix):
        if (n > MAX_KERNEL_N or num_trials > MAX_KERNEL_TRIALS):
            # Beyond the packed-hash-entry contracts (far past paper
            # scale): the numpy round is bit-identical, just slower.
            return super()._run_ensemble_clean(
                base, n, num_trials, budget, generator, telemetry,
                started, row_result, state_class, class_matrix)
        ptab, cls_arr = self._kernel_tables()
        ensemble_round = self._kernels.ensemble_round

        rounds = 0
        drawn = 0
        results = [None] * num_trials
        counts = np.tile(base, (num_trials, 1))
        if counts.dtype != np.int64:
            counts = counts.astype(np.int64)
        trial_ids = np.arange(num_trials)
        productive = np.zeros(num_trials, dtype=np.int64)
        steps_r = np.zeros(num_trials, dtype=np.int64)
        live = num_trials
        span = n * (n - 1)
        w_cap = _max_window(n)
        window = int(np.clip(int(0.9 * math.sqrt(n)), _MIN_WINDOW,
                             w_cap))
        consumed_buf = np.empty(num_trials, dtype=np.int64)
        prod_buf = np.empty(num_trials, dtype=np.int64)
        settled_buf = np.empty(num_trials, dtype=np.int64)
        sstep_buf = np.empty(num_trials, dtype=np.int64)
        sprod_buf = np.empty(num_trials, dtype=np.int64)
        dec_buf = np.empty(num_trials, dtype=np.int64)
        rem_buf = np.empty(num_trials, dtype=np.int64)

        while live:
            remaining = rem_buf[:live]    # >= 1 for every live row
            np.subtract(budget, steps_r, out=remaining)
            w = min(window, int(remaining.max()))
            rounds += 1
            drawn += w * live
            # The one RNG call per round, identical to the numpy path.
            raw = generator.integers(0, span, size=(live, w),
                                     dtype=np.int64)
            consumed = consumed_buf[:live]
            round_prod = prod_buf[:live]
            settled = settled_buf[:live]
            sstep = sstep_buf[:live]
            sprod = sprod_buf[:live]
            dec = dec_buf[:live]
            ensemble_round(raw, counts, remaining, n, ptab, cls_arr,
                           consumed, round_prod, settled,
                           sstep, sprod, dec)
            productive += round_prod
            steps_r += consumed
            # Rows usually survive a round untouched; only pay the
            # retire bookkeeping when the kernel reported a settle or
            # some row ran out of budget.
            if settled.any() or int(steps_r.max()) >= budget:
                settled_live = settled.astype(bool)
                for posn in np.flatnonzero(settled_live):
                    # The kernel's full-round consumed/round_prod back
                    # out so the result carries the exact in-round
                    # settle point.
                    steps0 = int(steps_r[posn] - consumed[posn])
                    prod0 = int(productive[posn] - round_prod[posn])
                    results[trial_ids[posn]] = row_result(
                        steps0 + int(sstep[posn]), True,
                        int(dec[posn]), counts[posn],
                        prod0 + int(sprod[posn]))
                exhausted = steps_r >= budget
                retire = settled_live | exhausted
                if retire.any():
                    for posn in np.flatnonzero(
                            exhausted & ~settled_live):
                        results[trial_ids[posn]] = row_result(
                            budget, False, None, counts[posn],
                            productive[posn])
                    keep = ~retire
                    counts = counts[keep]
                    trial_ids = trial_ids[keep]
                    productive = productive[keep]
                    steps_r = steps_r[keep]
                    live = len(trial_ids)
                    if not live:
                        break
            window = int(np.clip(int(1.3 * consumed.mean()) + 2,
                                 _MIN_WINDOW, w_cap))

        if telemetry.enabled:
            emit_chunk_telemetry(self, telemetry,
                                 time.perf_counter() - started, n,
                                 results, rounds, drawn)
        return results


class JitBatchEngine(_KernelTablesMixin, BatchEngine):
    """:class:`BatchEngine` with the matching step compiled."""

    name = "batch-jit"

    def __init__(self, protocol, *, batch_fraction: float = 0.05,
                 backend: str | None = None):
        super().__init__(protocol, batch_fraction=batch_fraction)
        self._kernels = load(backend)

    def _simulate(self, counts, n, rng, max_steps, tracker, recorder):
        if self.protocol.num_states > ENSEMBLE_MAX_STATES:
            return super()._simulate(counts, n, rng, max_steps,
                                     tracker, recorder)
        check_budget_sanity(max_steps)
        ptab, _ = self._kernel_tables()
        batch_match = self._kernels.batch_match
        s = self.protocol.num_states

        agents = np.repeat(np.arange(s, dtype=np.int64),
                           np.asarray(counts, dtype=np.int64))
        rng.shuffle(agents)
        pairs_per_round = max(1, int(n * self.batch_fraction / 2))

        dense = np.asarray(counts, dtype=np.int64)
        steps = 0
        productive = 0
        while steps < max_steps:
            k = min(pairs_per_round, max_steps - steps)
            chosen = np.ascontiguousarray(
                rng.choice(n, size=2 * k, replace=False),
                dtype=np.int64)
            changed = batch_match(chosen, agents, dense, ptab)
            steps += k
            if changed:
                productive += changed
                counts[:] = dense.tolist()
                tracker.reset(counts)
                if recorder is not None:
                    recorder.maybe_record(steps, counts)
                if tracker.settled():
                    return steps, productive, False, None
        return steps, productive, False, None
