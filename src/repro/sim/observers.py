"""Per-interaction observers: instrumenting the productive steps.

Engines notify their settledness tracker after every state-changing
interaction; :class:`ObservingTracker` piggybacks on that channel to
invoke user callbacks with the interaction's ``(i, j, new_i, new_j)``
state indices — no engine-loop changes, no overhead when unused.

:class:`RuleCensus` is the bundled observer: it tallies interactions
by rule label, and :func:`avc_rule_classifier` labels AVC interactions
with the Figure-1 rule that fired (``averaging`` / ``follow`` /
``neutralization`` / ``shift``).  The ``phases`` experiment and the
tests use it to check *which* dynamics dominate each phase of a run.

Supported on the exact sequential engines (agent, count,
null-skipping, continuous-time); the batch engine reports rounds, not
individual interactions, and ignores observers.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable

from ..core.avc import AVCProtocol
from .convergence import SettleTracker

__all__ = ["ObservingTracker", "RuleCensus", "avc_rule_classifier"]


class ObservingTracker(SettleTracker):
    """Wrap a tracker, forwarding every productive update to observers."""

    __slots__ = ("_inner", "_observers")

    def __init__(self, inner: SettleTracker, observers):
        self._inner = inner
        self._observers = tuple(observers)

    def update(self, i, j, new_i, new_j) -> None:
        self._inner.update(i, j, new_i, new_j)
        for observer in self._observers:
            observer(i, j, new_i, new_j)

    def shift(self, old, new) -> None:
        # Fault rewrites are not interactions; observers see only the
        # protocol's own transitions.
        self._inner.shift(old, new)

    def adjust(self, index, delta) -> None:
        self._inner.adjust(index, delta)

    def reset(self, counts) -> None:
        self._inner.reset(counts)

    def settled(self) -> bool:
        return self._inner.settled()

    def decision(self):
        return self._inner.decision()


class RuleCensus:
    """Tally productive interactions by rule label.

    ``classifier(i, j, new_i, new_j) -> str`` names the rule; counts
    are exposed as a :class:`collections.Counter` via :attr:`counts`.
    Instances are callables, usable directly as engine observers.
    """

    def __init__(self, classifier: Callable[[int, int, int, int], str]):
        self._classifier = classifier
        self.counts: Counter = Counter()

    def __call__(self, i, j, new_i, new_j) -> None:
        self.counts[self._classifier(i, j, new_i, new_j)] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fractions(self) -> dict:
        """Rule mix as fractions of all productive interactions."""
        total = self.total
        if not total:
            return {}
        return {label: count / total
                for label, count in self.counts.most_common()}


def avc_rule_classifier(protocol: AVCProtocol
                        ) -> Callable[[int, int, int, int], str]:
    """Label AVC interactions with their Figure-1 rule.

    * ``averaging`` — rule 1 (a weight > 1 participant);
    * ``follow`` — rule 2 (a weak agent adopts a partner's sign);
    * ``neutralization`` — rule 3 (two weight-1 agents drop to ±0);
    * ``shift`` — rule 4 (weight-1 agents descend a level).
    """
    states = protocol.states

    def classify(i: int, j: int, new_i: int, new_j: int) -> str:
        x, y = states[i], states[j]
        if (x.weight > 0 and y.weight > 0
                and (x.weight > 1 or y.weight > 1)):
            return "averaging"
        if (x.weight == 0) != (y.weight == 0):
            return "follow"
        new_x, new_y = states[new_i], states[new_j]
        if x.weight == 1 and y.weight == 1 \
                and new_x.weight == 0 and new_y.weight == 0:
            return "neutralization"
        return "shift"

    return classify
