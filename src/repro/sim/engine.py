"""Engine base class and the shared run-loop plumbing.

All engines simulate the same process — the discrete-time uniform
random pairwise-interaction model of Section 2 of the paper — and
expose one entry point::

    engine = CountEngine(protocol)
    result = engine.run(initial_counts, rng=0)

``run`` executes until the configuration *settles* (see
:mod:`repro.sim.convergence`) or the interaction budget runs out, and
returns a :class:`~repro.sim.results.RunResult` whose ``steps`` is the
index of the settling interaction.

The engines differ only in their data structures and therefore their
performance envelopes:

=====================  ===============================  ==================
engine                 cost per interaction              sweet spot
=====================  ===============================  ==================
AgentEngine            O(1), explicit agents            small n, any graph
CountEngine            O(log s), count vector           exact, large n
NullSkippingEngine     O(s^2) per *productive* step      small s, huge n
ContinuousTimeEngine   as NullSkipping + clock           Poisson model
BatchEngine            amortized O(1) (vectorized)       sweeps, approximate
EnsembleEngine         O(1) amortized over T trials     exact multi-trial
=====================  ===============================  ==================

``AgentEngine``, ``CountEngine``, ``NullSkippingEngine``,
``ContinuousTimeEngine`` and ``EnsembleEngine`` sample *exactly* the
same Markov chain (the ensemble engine advances T independent trials
per vectorized tick; see its module docstring); the ``BatchEngine``
applies disjoint random matchings and is a documented approximation
(see its module docstring).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from collections.abc import Mapping

from ..errors import (
    ConvergenceTimeout,
    InvalidParameterError,
    SimulationError,
)
from ..faults import active_faults
from ..protocols.base import PopulationProtocol, State
from ..rng import ensure_rng
from ..telemetry.context import current as current_telemetry
from .convergence import make_settle_tracker
from .results import RunResult

__all__ = ["Engine", "DEFAULT_MAX_PARALLEL_TIME"]

#: Default interaction budget, expressed in parallel time.  Generous:
#: the paper's slowest configuration (four-state at eps = 1/n) tops out
#: around 10^6 parallel time in Figure 3.
DEFAULT_MAX_PARALLEL_TIME = 4.0e6


class Engine(ABC):
    """Base class for simulation engines.

    Subclasses implement :meth:`_simulate`; the base class handles
    validation, budget resolution, convergence bookkeeping, and result
    assembly.
    """

    name = "engine"

    #: Whether the engine implements :meth:`_simulate_faulted`.
    supports_faults = False
    #: Whether the engine honours adversarial pair schedulers
    #: (``FaultSpec.scheduler``); only the agent engine does.
    supports_fault_scheduler = False
    #: Whether the engine injects byzantine lies
    #: (``FaultSpec.byzantine_f``); the count, agent, and token
    #: ensemble paths do.
    supports_byzantine = False

    def __init__(self, protocol: PopulationProtocol):
        self.protocol = protocol

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, initial_counts: Mapping[State, int], *,
            rng=None,
            max_steps: int | None = None,
            max_parallel_time: float | None = None,
            expected: int | None = None,
            recorder=None,
            event_observer=None,
            faults=None,
            on_timeout: str = "return") -> RunResult:
        """Simulate one execution from ``initial_counts``.

        Parameters
        ----------
        initial_counts:
            Mapping from protocol states to agent counts.
        rng:
            Seed material accepted by :func:`repro.rng.ensure_rng`.
        max_steps / max_parallel_time:
            Interaction budget; at most one may be given.  The default
            is :data:`DEFAULT_MAX_PARALLEL_TIME` parallel time units.
        expected:
            The correct output for this input, recorded in the result
            (``run_majority`` fills it in automatically).
        recorder:
            Optional trajectory recorder (:mod:`repro.sim.record`).
        event_observer:
            Optional callable (or sequence of callables)
            ``(i, j, new_i, new_j)`` invoked on every state-changing
            interaction (see :mod:`repro.sim.observers`); ignored by
            the batch engine, which has no per-interaction events.
        faults:
            Optional :class:`repro.FaultSpec` injecting state
            corruption, churn, interaction faults, or an adversarial
            scheduler (see :mod:`repro.faults`).  A ``None`` or null
            spec runs the clean, bit-identical fast path.  Raises
            :class:`~repro.errors.InvalidParameterError` on engines
            without fault support (the analytic null-skipping family).
        on_timeout:
            ``"return"`` (default) hands back an unsettled
            :class:`RunResult` when the budget runs out; ``"raise"``
            raises :class:`~repro.errors.ConvergenceTimeout` with that
            result attached.  Frozen runs (provably never settling)
            are never treated as timeouts.
        """
        if on_timeout not in ("return", "raise"):
            raise InvalidParameterError(
                f"on_timeout must be 'return' or 'raise', got "
                f"{on_timeout!r}")
        counts = self.protocol.counts_to_vector(initial_counts)
        n = int(counts.sum())
        if n < 2:
            raise InvalidParameterError(
                f"population must have at least 2 agents, got {n}")
        budget = self._resolve_budget(n, max_steps, max_parallel_time)
        generator = ensure_rng(rng)

        runtime = None
        active = active_faults(faults)
        if active is not None:
            if not self.supports_faults:
                raise InvalidParameterError(
                    f"engine {self.name!r} does not support fault "
                    "injection; use the agent, count, batch, or "
                    "ensemble engine")
            from ..faults import FaultRuntime

            runtime = FaultRuntime.build(
                active, self.protocol, expected=expected,
                scheduler_ok=self.supports_fault_scheduler,
                byzantine_ok=self.supports_byzantine, n=n)

        count_list = [int(c) for c in counts]
        tracker = make_settle_tracker(self.protocol, count_list)
        if event_observer is not None and self._supports_observers():
            from .observers import ObservingTracker

            observers = (event_observer if isinstance(event_observer,
                                                      (list, tuple))
                         else (event_observer,))
            tracker = ObservingTracker(tracker, observers)
        if recorder is not None:
            recorder.maybe_record(0, count_list)

        # Telemetry is aggregate-only: nothing is recorded inside
        # _simulate; one enabled check here is the entire disabled cost.
        telemetry = current_telemetry()
        started = time.perf_counter() if telemetry.enabled else 0.0

        if tracker.settled() and (runtime is None
                                  or runtime.hold_until == 0):
            steps, productive, frozen, extra_time = 0, 0, False, None
        elif runtime is not None:
            steps, productive, frozen, extra_time = self._simulate_faulted(
                count_list, n, generator, budget, tracker, recorder,
                runtime)
        else:
            steps, productive, frozen, extra_time = self._simulate(
                count_list, n, generator, budget, tracker, recorder)

        if telemetry.enabled:
            self._emit_run_telemetry(telemetry,
                                     time.perf_counter() - started,
                                     n, steps, productive,
                                     tracker.settled())
            if runtime is not None:
                self._emit_fault_telemetry(telemetry, runtime)
        if recorder is not None:
            recorder.force_record(steps, count_list)
        result = RunResult(
            protocol_name=self.protocol.name,
            engine_name=self.name,
            n=n,
            steps=steps,
            settled=tracker.settled(),
            decision=tracker.decision(),
            expected=expected,
            final_counts=self.protocol.vector_to_counts(count_list),
            productive_steps=productive,
            continuous_time=extra_time,
            frozen=frozen,
            fault_events=runtime.events() if runtime is not None else None,
        )
        if on_timeout == "raise" and not result.settled \
                and not result.frozen:
            raise ConvergenceTimeout(
                f"{self.protocol.name} did not settle within "
                f"{budget} interactions (n={n})", result=result)
        return result

    def _emit_run_telemetry(self, telemetry, wall: float, n: int,
                            steps: int, productive, settled: bool) -> None:
        """Report one run's aggregates to the active telemetry."""
        labels = {"engine": self.name, "protocol": self.protocol.name,
                  **self._telemetry_labels()}
        telemetry.count("engine.runs", **labels)
        telemetry.count("engine.interactions", steps, **labels)
        if productive is not None:
            telemetry.count("engine.productive", productive, **labels)
        if not settled:
            telemetry.count("engine.unsettled", **labels)
        telemetry.record_span("engine.run", wall, n=n, steps=steps,
                              settled=settled, **labels)

    def _emit_fault_telemetry(self, telemetry, runtime) -> None:
        """Report one faulted run's injection counts."""
        labels = {"engine": self.name, "protocol": self.protocol.name}
        telemetry.count("fault.runs", **labels)
        for kind, count in runtime.events().items():
            if count:
                telemetry.count(f"fault.{kind}", count, **labels)

    def _telemetry_labels(self) -> dict:
        """Extra labels identifying this engine's configuration.

        Subclasses with tunables that change the simulated process
        (batch fraction, interaction graph) override this so traces
        distinguish their runs.
        """
        return {}

    def _supports_observers(self) -> bool:
        """Whether the engine reports individual interactions.

        True for the sequential engines; the batch engine overrides
        this since it resynchronizes trackers per round instead.
        """
        return True

    # ------------------------------------------------------------------
    # Subclass contract
    # ------------------------------------------------------------------

    @abstractmethod
    def _simulate(self, counts: list[int], n: int, rng, max_steps: int,
                  tracker, recorder) -> tuple[int, int | None, bool,
                                              float | None]:
        """Run the inner loop, mutating ``counts`` in place.

        Must stop as soon as ``tracker.settled()`` becomes true (after
        notifying the tracker of each state change) or when the step
        count would exceed ``max_steps``.  Returns ``(steps,
        productive_steps, frozen, continuous_time)``.
        """

    def _simulate_faulted(self, counts: list[int], n: int, rng,
                          max_steps: int, tracker, recorder,
                          runtime) -> tuple[int, int | None, bool,
                                            float | None]:
        """Fault-injecting inner loop (see :mod:`repro.faults`).

        Only called with an *active* :class:`~repro.faults.FaultRuntime`
        and only on engines declaring ``supports_faults = True``.  The
        canonical per-tick order is interaction (subject to drop, then
        byzantine message corruption, then one-way), then flip, then
        crash, then join; settling is only terminal once
        ``steps >= runtime.hold_until``.
        """
        raise NotImplementedError(
            f"engine {self.name!r} declares fault support but does not "
            "implement _simulate_faulted")

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _resolve_budget(n: int, max_steps, max_parallel_time) -> int:
        if max_steps is not None and max_parallel_time is not None:
            raise InvalidParameterError(
                "give max_steps or max_parallel_time, not both")
        if max_steps is None:
            parallel = (DEFAULT_MAX_PARALLEL_TIME
                        if max_parallel_time is None else max_parallel_time)
            if parallel <= 0:
                raise InvalidParameterError(
                    f"max_parallel_time must be positive, got {parallel}")
            max_steps = int(parallel * n)
        if max_steps <= 0:
            raise InvalidParameterError(
                f"max_steps must be positive, got {max_steps}")
        return max_steps

    def _transition_lookup(self):
        """Fast per-engine transition lookup: table for small ``s``.

        Returns a callable ``(i, j) -> (i2, j2)``.  For small state
        spaces a dense Python list-of-lists beats dict lookups; large
        state spaces (AVC with big ``m``) use the memoized dict inside
        :meth:`~repro.protocols.base.PopulationProtocol.transition_index`.
        """
        protocol = self.protocol
        if protocol.num_states <= 256:
            out_x, out_y = protocol.transition_matrix()
            table_x = out_x.tolist()
            table_y = out_y.tolist()

            def lookup(i: int, j: int) -> tuple[int, int]:
                return table_x[i][j], table_y[i][j]

            return lookup
        return protocol.transition_index

    def __repr__(self) -> str:
        return f"<{type(self).__name__} protocol={self.protocol.name!r}>"


def check_budget_sanity(max_steps: int) -> None:
    """Guard against absurd budgets that would never terminate."""
    if max_steps > 10**15:
        raise SimulationError(
            f"interaction budget {max_steps} is beyond any feasible run; "
            "lower max_steps/max_parallel_time")
