"""Shared tables and telemetry for the vectorized ensemble engines.

Both the token-matrix :class:`~repro.sim.ensemble_engine.EnsembleEngine`
and the count-matrix
:class:`~repro.sim.count_ensemble_engine.CountEnsembleEngine` advance
``T`` independent trials of the same chain per vectorized round.  They
share the protocol-derived lookup tables (flat transition tables,
productive-pair masks, unanimity class tables) and the per-chunk
telemetry schema; this module holds those pieces so the two engines
cannot drift apart.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "class_tables",
    "flat_transition_tables",
    "emit_chunk_telemetry",
    "emit_fault_telemetry",
]


def class_tables(protocol):
    """``(state_class, class_matrix)`` for unanimity tracking.

    ``state_class[state]`` is 0 for undecided, 1 for output 0, 2 for
    output 1; ``class_matrix`` is its one-hot ``(s, 3)`` form, so a
    ``counts @ class_matrix`` matmul yields per-class agent counts.
    """
    outputs = protocol.output_array()
    state_class = np.where(outputs < 0, 0,
                           np.where(outputs == 0, 1, 2)).astype(np.int64)
    s = protocol.num_states
    class_matrix = np.zeros((s, 3), dtype=np.int64)
    class_matrix[np.arange(s), state_class] = 1
    return state_class, class_matrix


def flat_transition_tables(protocol):
    """``(table_x, table_y, nonnull_full, nonnull_ow)`` flat tables.

    ``table_x[i * s + j]`` / ``table_y[i * s + j]`` are the post-states
    of the ordered pair ``(i, j)``; ``nonnull_full`` marks pairs whose
    transition changes either state, ``nonnull_ow`` pairs whose
    transition changes the initiator (the productive predicate under a
    one-way fault, where the responder keeps its state).
    """
    s = protocol.num_states
    out_x, out_y = protocol.transition_matrix()
    table_x = out_x.ravel()
    table_y = out_y.ravel()
    col_j, col_i = np.meshgrid(np.arange(s), np.arange(s))
    nonnull_full = ((table_x != col_i.ravel())
                    | (table_y != col_j.ravel()))
    nonnull_ow = table_x != col_i.ravel()
    return table_x, table_y, nonnull_full, nonnull_ow


def emit_chunk_telemetry(engine, telemetry, wall: float, n: int,
                         results, rounds: int, drawn: int) -> None:
    """Report one sub-ensemble's aggregates to the telemetry.

    ``drawn`` counts speculative draws including the discarded
    suffixes; ``engine.interactions`` counts only the consumed
    (exact-chain) interactions, matching the sequential engines.
    """
    labels = {"engine": engine.name, "protocol": engine.protocol.name}
    steps = sum(r.steps for r in results)
    telemetry.count("engine.runs", len(results), **labels)
    telemetry.count("engine.interactions", steps, **labels)
    telemetry.count("engine.productive",
                    sum(r.productive_steps for r in results), **labels)
    telemetry.count("engine.ensemble.rounds", rounds, **labels)
    telemetry.count("engine.ensemble.drawn", drawn, **labels)
    unsettled = sum(1 for r in results if not r.settled)
    if unsettled:
        telemetry.count("engine.unsettled", unsettled, **labels)
    telemetry.record_span("engine.ensemble_chunk", wall, n=n,
                          trials=len(results), steps=steps,
                          rounds=rounds, **labels)


def emit_fault_telemetry(engine, telemetry, results, runtime) -> None:
    """Report a faulted sub-ensemble's ``fault.*`` counters."""
    labels = {"engine": engine.name, "protocol": engine.protocol.name}
    telemetry.count("fault.runs", len(results), **labels)
    for kind, count in runtime.events().items():
        if count:
            telemetry.count(f"fault.{kind}", count, **labels)
