"""Fenwick (binary indexed) tree for weighted sampling over state counts.

The count-vector engine keeps one counter per protocol state and must,
per interaction, (a) draw a state index with probability proportional
to its count and (b) update two counters.  A Fenwick tree does both in
``O(log s)``, which is what makes exact simulation of AVC with
``s ~ n`` states feasible.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["FenwickTree"]


class FenwickTree:
    """Prefix-sum tree over non-negative integer weights.

    Supports point updates, prefix sums, and inverse-prefix queries
    (find the first index whose cumulative weight exceeds a target),
    all in ``O(log size)``.
    """

    __slots__ = ("_size", "_tree", "_total", "_log_size")

    def __init__(self, weights: Sequence[int]):
        self._size = len(weights)
        # One-based internal array; index 0 unused.
        tree = [0] * (self._size + 1)
        total = 0
        for i, w in enumerate(weights):
            if w < 0:
                raise ValueError(f"negative weight {w} at index {i}")
            total += w
            tree[i + 1] += w
            parent = (i + 1) + ((i + 1) & -(i + 1))
            if parent <= self._size:
                tree[parent] += tree[i + 1]
        self._tree = tree
        self._total = total
        # Largest power of two <= size, for the top-down descent.
        log_size = 1
        while (log_size << 1) <= self._size:
            log_size <<= 1
        self._log_size = log_size

    def __len__(self) -> int:
        return self._size

    @property
    def total(self) -> int:
        """Sum of all weights."""
        return self._total

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` to the weight at ``index``.

        The caller is responsible for keeping weights non-negative;
        this is the hot path and performs no checks.
        """
        self._total += delta
        tree = self._tree
        i = index + 1
        size = self._size
        while i <= size:
            tree[i] += delta
            i += i & -i

    def prefix_sum(self, index: int) -> int:
        """Sum of weights at indices ``0 .. index`` inclusive."""
        tree = self._tree
        i = index + 1
        acc = 0
        while i > 0:
            acc += tree[i]
            i -= i & -i
        return acc

    def get(self, index: int) -> int:
        """The individual weight at ``index``."""
        return self.prefix_sum(index) - (self.prefix_sum(index - 1)
                                         if index > 0 else 0)

    def find(self, target: int) -> int:
        """Smallest index with cumulative weight strictly above ``target``.

        For ``target`` drawn uniformly from ``[0, total)`` this samples
        an index with probability proportional to its weight.
        """
        if not 0 <= target < self._total:
            raise ValueError(
                f"target {target} outside [0, {self._total})")
        tree = self._tree
        pos = 0
        remaining = target
        step = self._log_size
        size = self._size
        while step > 0:
            candidate = pos + step
            if candidate <= size and tree[candidate] <= remaining:
                pos = candidate
                remaining -= tree[candidate]
            step >>= 1
        return pos  # zero-based index of the sampled slot

    def to_list(self) -> list[int]:
        """Materialize the individual weights (for tests/debugging)."""
        return [self.get(i) for i in range(self._size)]
