"""Interaction schedulers: who meets whom.

The paper works on the complete interaction graph (uniform random
ordered pairs); [DV12] analyzes the four-state protocol on arbitrary
connected graphs.  The :class:`AgentEngine` delegates pair selection to
a sampler from this module, so any interaction topology plugs in.

Samplers produce *blocks* of pairs at a time: per-step calls into
numpy's generator dominate the cost of a pure-Python inner loop, so
engines fetch a few thousand pairs per call and iterate over plain
lists.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError

__all__ = ["PairSampler", "CompletePairSampler", "GraphPairSampler",
           "StubbornPairSampler", "ClusteredPairSampler"]


class PairSampler:
    """Interface: yield blocks of ordered agent pairs."""

    #: Number of agents the sampler addresses.
    n: int

    def sample_block(self, rng: np.random.Generator,
                     size: int) -> tuple[list[int], list[int]]:
        """Return ``size`` ordered pairs as two parallel index lists."""
        raise NotImplementedError


class CompletePairSampler(PairSampler):
    """Uniform ordered pairs of distinct agents (the clique)."""

    def __init__(self, n: int):
        if n < 2:
            raise InvalidParameterError(f"need at least 2 agents, got {n}")
        self.n = n

    def sample_block(self, rng: np.random.Generator,
                     size: int) -> tuple[list[int], list[int]]:
        n = self.n
        first = rng.integers(0, n, size=size)
        # Draw the responder from the n-1 agents other than the
        # initiator by sampling [0, n-1) and skipping the initiator.
        second = rng.integers(0, n - 1, size=size)
        second = second + (second >= first)
        return first.tolist(), second.tolist()


class GraphPairSampler(PairSampler):
    """Uniform random directed edge of an interaction graph.

    Accepts a ``networkx`` graph (or any object with ``number_of_nodes``
    and ``edges``).  Undirected graphs contribute both orientations of
    each edge, matching the symmetric-interaction convention of [DV12].
    Nodes are relabelled to ``0..n-1`` in iteration order; use
    :func:`repro.graphs.builders` helpers to construct graphs with
    integer labels directly.
    """

    def __init__(self, graph):
        import networkx as nx

        n = graph.number_of_nodes()
        if n < 2:
            raise InvalidParameterError(
                f"interaction graph needs >= 2 nodes, got {n}")
        if not nx.is_directed(graph):
            if not nx.is_connected(graph):
                raise InvalidParameterError(
                    "interaction graph must be connected")
        elif not nx.is_strongly_connected(graph):
            raise InvalidParameterError(
                "directed interaction graph must be strongly connected")
        relabel = {node: index for index, node in enumerate(graph.nodes())}
        edges = []
        for u, v in graph.edges():
            if u == v:
                continue  # the model forbids self-interactions
            edges.append((relabel[u], relabel[v]))
            if not nx.is_directed(graph):
                edges.append((relabel[v], relabel[u]))
        if not edges:
            raise InvalidParameterError("interaction graph has no edges")
        self.n = n
        self._edges = np.array(edges, dtype=np.int64)

    @property
    def num_directed_edges(self) -> int:
        """Number of ordered interacting pairs."""
        return len(self._edges)

    def sample_block(self, rng: np.random.Generator,
                     size: int) -> tuple[list[int], list[int]]:
        picks = rng.integers(0, len(self._edges), size=size)
        chosen = self._edges[picks]
        return chosen[:, 0].tolist(), chosen[:, 1].tolist()


class StubbornPairSampler(PairSampler):
    """Adversarial scheduler that keeps re-scheduling one fixed pair.

    With probability ``strength`` the sampler ignores the uniform draw
    and schedules the same ordered pair again; the remaining mass is a
    clean uniform draw over the clique, which keeps the scheduler
    *fair* (every pair still meets infinitely often, so convergence
    guarantees apply — only the time bounds degrade).  This is the
    classic worst case for epidemic spreading: most interactions are
    wasted on a pair that already agrees.
    """

    def __init__(self, n: int, *, strength: float = 0.9,
                 pair: tuple[int, int] = (0, 1)):
        if n < 2:
            raise InvalidParameterError(f"need at least 2 agents, got {n}")
        if not 0.0 <= strength < 1.0:
            raise InvalidParameterError(
                f"strength must be in [0, 1), got {strength}")
        u, v = pair
        if not (0 <= u < n and 0 <= v < n) or u == v:
            raise InvalidParameterError(
                f"pair must be two distinct agents in [0, {n}), got {pair}")
        self.n = n
        self.strength = strength
        self.pair = (u, v)
        self._uniform = CompletePairSampler(n)

    def sample_block(self, rng: np.random.Generator,
                     size: int) -> tuple[list[int], list[int]]:
        first, second = self._uniform.sample_block(rng, size)
        stubborn = rng.random(size) < self.strength
        u, v = self.pair
        first = np.where(stubborn, u, first)
        second = np.where(stubborn, v, second)
        return first.tolist(), second.tolist()


class ClusteredPairSampler(PairSampler):
    """Adversarial scheduler biased toward intra-cluster interactions.

    Agents are split into ``clusters`` contiguous index blocks.  With
    probability ``intra_prob`` the initiator's partner is drawn from
    its own block (the slow-edge regime: cross-cluster information
    flows only through the thin ``1 - intra_prob`` channel, the
    sampler analogue of a barbell graph); otherwise the pair is a
    clean uniform draw.  Blocks of size 1 always fall back to the
    uniform draw — there is no intra partner to pick.
    """

    def __init__(self, n: int, *, clusters: int = 2,
                 intra_prob: float = 0.9):
        if n < 2:
            raise InvalidParameterError(f"need at least 2 agents, got {n}")
        if clusters < 2:
            raise InvalidParameterError(
                f"need at least 2 clusters, got {clusters}")
        if clusters > n:
            raise InvalidParameterError(
                f"cannot split {n} agents into {clusters} clusters")
        if not 0.0 <= intra_prob < 1.0:
            raise InvalidParameterError(
                f"intra_prob must be in [0, 1), got {intra_prob}")
        self.n = n
        self.clusters = clusters
        self.intra_prob = intra_prob
        sizes = np.full(clusters, n // clusters, dtype=np.int64)
        sizes[: n % clusters] += 1
        #: offsets[c] = first agent index of cluster c (+ sentinel n).
        self._offsets = np.concatenate(
            ([0], np.cumsum(sizes))).astype(np.int64)
        self._sizes = sizes
        self._uniform = CompletePairSampler(n)

    def sample_block(self, rng: np.random.Generator,
                     size: int) -> tuple[list[int], list[int]]:
        first, second = self._uniform.sample_block(rng, size)
        first = np.asarray(first, dtype=np.int64)
        second = np.asarray(second, dtype=np.int64)
        intra = rng.random(size) < self.intra_prob
        # Cluster of each initiator: the offsets are sorted, so the
        # insertion point minus one is the block index.
        cluster = np.searchsorted(self._offsets, first, side="right") - 1
        csize = self._sizes[cluster]
        intra &= csize > 1
        # Partner within the cluster, excluding the initiator, via the
        # same skip trick as the uniform sampler.
        local = (rng.random(size) * (csize - 1)).astype(np.int64)
        partner = self._offsets[cluster] + local
        partner += partner >= first
        second = np.where(intra, partner, second)
        return first.tolist(), second.tolist()
