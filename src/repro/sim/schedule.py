"""Interaction schedulers: who meets whom.

The paper works on the complete interaction graph (uniform random
ordered pairs); [DV12] analyzes the four-state protocol on arbitrary
connected graphs.  The :class:`AgentEngine` delegates pair selection to
a sampler from this module, so any interaction topology plugs in.

Samplers produce *blocks* of pairs at a time: per-step calls into
numpy's generator dominate the cost of a pure-Python inner loop, so
engines fetch a few thousand pairs per call and iterate over plain
lists.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError

__all__ = ["PairSampler", "CompletePairSampler", "GraphPairSampler"]


class PairSampler:
    """Interface: yield blocks of ordered agent pairs."""

    #: Number of agents the sampler addresses.
    n: int

    def sample_block(self, rng: np.random.Generator,
                     size: int) -> tuple[list[int], list[int]]:
        """Return ``size`` ordered pairs as two parallel index lists."""
        raise NotImplementedError


class CompletePairSampler(PairSampler):
    """Uniform ordered pairs of distinct agents (the clique)."""

    def __init__(self, n: int):
        if n < 2:
            raise InvalidParameterError(f"need at least 2 agents, got {n}")
        self.n = n

    def sample_block(self, rng: np.random.Generator,
                     size: int) -> tuple[list[int], list[int]]:
        n = self.n
        first = rng.integers(0, n, size=size)
        # Draw the responder from the n-1 agents other than the
        # initiator by sampling [0, n-1) and skipping the initiator.
        second = rng.integers(0, n - 1, size=size)
        second = second + (second >= first)
        return first.tolist(), second.tolist()


class GraphPairSampler(PairSampler):
    """Uniform random directed edge of an interaction graph.

    Accepts a ``networkx`` graph (or any object with ``number_of_nodes``
    and ``edges``).  Undirected graphs contribute both orientations of
    each edge, matching the symmetric-interaction convention of [DV12].
    Nodes are relabelled to ``0..n-1`` in iteration order; use
    :func:`repro.graphs.builders` helpers to construct graphs with
    integer labels directly.
    """

    def __init__(self, graph):
        import networkx as nx

        n = graph.number_of_nodes()
        if n < 2:
            raise InvalidParameterError(
                f"interaction graph needs >= 2 nodes, got {n}")
        if not nx.is_directed(graph):
            if not nx.is_connected(graph):
                raise InvalidParameterError(
                    "interaction graph must be connected")
        elif not nx.is_strongly_connected(graph):
            raise InvalidParameterError(
                "directed interaction graph must be strongly connected")
        relabel = {node: index for index, node in enumerate(graph.nodes())}
        edges = []
        for u, v in graph.edges():
            if u == v:
                continue  # the model forbids self-interactions
            edges.append((relabel[u], relabel[v]))
            if not nx.is_directed(graph):
                edges.append((relabel[v], relabel[u]))
        if not edges:
            raise InvalidParameterError("interaction graph has no edges")
        self.n = n
        self._edges = np.array(edges, dtype=np.int64)

    @property
    def num_directed_edges(self) -> int:
        """Number of ordered interacting pairs."""
        return len(self._edges)

    def sample_block(self, rng: np.random.Generator,
                     size: int) -> tuple[list[int], list[int]]:
        picks = rng.integers(0, len(self._edges), size=size)
        chosen = self._edges[picks]
        return chosen[:, 0].tolist(), chosen[:, 1].tolist()
