"""Count-vector engine: exact simulation in ``O(log s)`` per step.

On the complete graph, agent identities are irrelevant: the
configuration is fully described by the vector of per-state counts,
and the scheduler's choice of an ordered agent pair induces the state
pair ``(i, j)`` with probability ``c_i * (c_j - [i == j]) / (n(n-1))``.
This engine samples the initiator's state from the counts, removes one
token, samples the responder's state from the remaining ``n - 1``
tokens, and applies the transition — exactly the same Markov chain as
:class:`~repro.sim.agent_engine.AgentEngine`, at ``O(log s)`` per
interaction via a Fenwick tree.  Memory is ``O(s)`` regardless of
``n``, which is what makes AVC with thousands of states runnable at
``n = 10^5``.
"""

from __future__ import annotations

from .engine import Engine, check_budget_sanity
from .fenwick import FenwickTree

__all__ = ["CountEngine"]

_BLOCK = 8192


class CountEngine(Engine):
    """Exact count-based simulation (complete interaction graph only)."""

    name = "count"

    def _simulate(self, counts, n, rng, max_steps, tracker, recorder):
        check_budget_sanity(max_steps)
        lookup = self._transition_lookup()
        tree = FenwickTree(counts)
        tree_add = tree.add
        tree_find = tree.find

        steps = 0
        productive = 0
        span = n * (n - 1)
        while steps < max_steps:
            block = min(_BLOCK, max_steps - steps)
            # One RNG call per block: r < n(n-1) encodes the ordered
            # (initiator token, responder token) pair; divmod splits it
            # into independent uniforms over [0, n) and [0, n-1).  The
            # hoisted tolist() conversions keep the inner loop on plain
            # Python ints (no per-step numpy scalar boxing).
            raw = rng.integers(0, span, size=block)
            first_targets, second_targets = (
                part.tolist() for part in divmod(raw, n - 1))
            for u, v in zip(first_targets, second_targets):
                steps += 1
                i = tree_find(u)
                # Sample the responder without replacement.
                tree_add(i, -1)
                j = tree_find(v)
                tree_add(i, 1)
                new_i, new_j = lookup(i, j)
                if new_i == i and new_j == j:
                    continue
                productive += 1
                counts[i] -= 1
                counts[j] -= 1
                counts[new_i] += 1
                counts[new_j] += 1
                tree_add(i, -1)
                tree_add(j, -1)
                tree_add(new_i, 1)
                tree_add(new_j, 1)
                tracker.update(i, j, new_i, new_j)
                if recorder is not None:
                    recorder.maybe_record(steps, counts)
                if tracker.settled():
                    return steps, productive, False, None
        return steps, productive, False, None
