"""Count-vector engine: exact simulation in ``O(log s)`` per step.

On the complete graph, agent identities are irrelevant: the
configuration is fully described by the vector of per-state counts,
and the scheduler's choice of an ordered agent pair induces the state
pair ``(i, j)`` with probability ``c_i * (c_j - [i == j]) / (n(n-1))``.
This engine samples the initiator's state from the counts, removes one
token, samples the responder's state from the remaining ``n - 1``
tokens, and applies the transition — exactly the same Markov chain as
:class:`~repro.sim.agent_engine.AgentEngine`, at ``O(log s)`` per
interaction via a Fenwick tree.  Memory is ``O(s)`` regardless of
``n``, which is what makes AVC with thousands of states runnable at
``n = 10^5``.
"""

from __future__ import annotations

import numpy as np

from .engine import Engine, check_budget_sanity
from .fenwick import FenwickTree

__all__ = ["CountEngine"]

_BLOCK = 8192


class CountEngine(Engine):
    """Exact count-based simulation (complete interaction graph only)."""

    name = "count"
    supports_faults = True
    supports_byzantine = True

    def _simulate(self, counts, n, rng, max_steps, tracker, recorder):
        check_budget_sanity(max_steps)
        lookup = self._transition_lookup()
        tree = FenwickTree(counts)
        tree_add = tree.add
        tree_find = tree.find

        steps = 0
        productive = 0
        span = n * (n - 1)
        # Preallocated divmod outputs: a full-budget run reuses the same
        # two blocks instead of allocating four fresh arrays per 8192
        # draws.  int64 is the generator's default dtype, so forcing it
        # keeps the stream identical while guarding the n(n-1) span
        # against 32-bit-default platforms.
        div_buf = np.empty(_BLOCK, dtype=np.int64)
        mod_buf = np.empty(_BLOCK, dtype=np.int64)
        while steps < max_steps:
            block = min(_BLOCK, max_steps - steps)
            # One RNG call per block: r < n(n-1) encodes the ordered
            # (initiator token, responder token) pair; divmod splits it
            # into independent uniforms over [0, n) and [0, n-1).  The
            # hoisted tolist() conversions keep the inner loop on plain
            # Python ints (no per-step numpy scalar boxing).
            raw = rng.integers(0, span, size=block, dtype=np.int64)
            q = div_buf if block == _BLOCK else div_buf[:block]
            r = mod_buf if block == _BLOCK else mod_buf[:block]
            np.floor_divide(raw, n - 1, out=q)
            np.remainder(raw, n - 1, out=r)
            first_targets = q.tolist()
            second_targets = r.tolist()
            for u, v in zip(first_targets, second_targets):
                steps += 1
                i = tree_find(u)
                # Sample the responder without replacement.
                tree_add(i, -1)
                j = tree_find(v)
                tree_add(i, 1)
                new_i, new_j = lookup(i, j)
                if new_i == i and new_j == j:
                    continue
                productive += 1
                counts[i] -= 1
                counts[j] -= 1
                counts[new_i] += 1
                counts[new_j] += 1
                tree_add(i, -1)
                tree_add(j, -1)
                tree_add(new_i, 1)
                tree_add(new_j, 1)
                tracker.update(i, j, new_i, new_j)
                if recorder is not None:
                    recorder.maybe_record(steps, counts)
                if tracker.settled():
                    return steps, productive, False, None
        return steps, productive, False, None

    def _simulate_faulted(self, counts, n, rng, max_steps, tracker,
                          recorder, runtime):
        return simulate_faulted_counts(self, counts, n, rng, max_steps,
                                       tracker, recorder, runtime)


def simulate_faulted_counts(engine, counts, n, rng, max_steps, tracker,
                            recorder, runtime):
    """Sequential count-vector loop with online fault injection.

    The canonical per-tick order (identical across engines): the
    scheduled interaction — suppressed by a drop, corrupted by
    byzantine lies, halved by a one-way fault — then flip, crash,
    join.  Pair and Bernoulli uniforms are pre-drawn per block; the
    rare per-event draws (victims, replacement states) come from
    scalar calls at injection time.  Pairs are drawn as floats scaled
    by the *live* population, since churn resizes it mid-block.  The
    byzantine membership uniforms are drawn in a separate per-block
    batch only when the budget is positive, so every pre-byzantine
    fault model keeps its exact random stream.

    Shared by :class:`CountEngine` and the ensemble engine's
    single-run path.
    """
    check_budget_sanity(max_steps)
    lookup = engine._transition_lookup()
    tree = FenwickTree(counts)
    tree_add = tree.add
    tree_find = tree.find

    flip_p = runtime.flip_prob
    crash_p = runtime.crash_prob
    join_p = runtime.join_prob
    drop_p = runtime.drop_prob
    ow_p = runtime.oneway_prob
    byz_f = runtime.byz_f
    horizon = runtime.horizon
    hold_until = runtime.hold_until
    floor = runtime.floor

    steps = 0
    productive = 0
    while steps < max_steps:
        block = min(_BLOCK, max_steps - steps)
        pair_rows = rng.random((block, 2)).tolist()
        # Columns: drop, one-way, flip, crash, join.
        fault_rows = rng.random((block, 5)).tolist()
        # Columns: initiator-byzantine, responder-byzantine.
        byz_rows = rng.random((block, 2)).tolist() if byz_f else None
        for tick, ((pu, pv), (du, ou, fu, cu, ju)) in enumerate(
                zip(pair_rows, fault_rows)):
            armed = horizon is None or steps < horizon
            steps += 1
            changed = False
            if armed and drop_p > 0.0 and du < drop_p:
                runtime.drops += 1
            else:
                i = tree_find(int(pu * n))
                # Sample the responder without replacement.
                tree_add(i, -1)
                j = tree_find(int(pv * (n - 1)))
                tree_add(i, 1)
                if armed and byz_f:
                    bu, bv = byz_rows[tick]
                    b1 = bu * n < byz_f
                    b2 = bv * (n - 1) < byz_f - b1
                else:
                    b1 = b2 = False
                if b1 or b2:
                    runtime.byzantine_meetings += 1
                    runtime.byzantine_lies += b1 + b2
                    if b1 and b2:
                        new_i, new_j = i, j
                    elif b1:
                        lie = runtime.byzantine_lie_state(counts)
                        new_i, new_j = i, lookup(lie, j)[1]
                    else:
                        lie = runtime.byzantine_lie_state(counts)
                        new_i, new_j = lookup(i, lie)[0], j
                else:
                    new_i, new_j = lookup(i, j)
                if armed and ow_p > 0.0 and ou < ow_p:
                    runtime.oneway += 1
                    new_j = j
                if new_i != i or new_j != j:
                    productive += 1
                    changed = True
                    counts[i] -= 1
                    counts[j] -= 1
                    counts[new_i] += 1
                    counts[new_j] += 1
                    tree_add(i, -1)
                    tree_add(j, -1)
                    tree_add(new_i, 1)
                    tree_add(new_j, 1)
                    tracker.update(i, j, new_i, new_j)
            if armed:
                if flip_p > 0.0 and fu < flip_p:
                    runtime.flips += 1
                    victim = tree_find(int(rng.random() * n))
                    new = runtime.pick_flip_state(rng)
                    if new != victim:
                        changed = True
                        counts[victim] -= 1
                        counts[new] += 1
                        tree_add(victim, -1)
                        tree_add(new, 1)
                        tracker.shift(victim, new)
                if crash_p > 0.0 and cu < crash_p and n > floor:
                    runtime.crashes += 1
                    changed = True
                    victim = tree_find(int(rng.random() * n))
                    counts[victim] -= 1
                    tree_add(victim, -1)
                    tracker.adjust(victim, -1)
                    n -= 1
                if join_p > 0.0 and ju < join_p:
                    runtime.joins += 1
                    changed = True
                    new = runtime.pick_join_state(rng)
                    counts[new] += 1
                    tree_add(new, 1)
                    tracker.adjust(new, 1)
                    n += 1
            if changed:
                if recorder is not None:
                    recorder.maybe_record(steps, counts)
                if tracker.settled() and steps >= hold_until:
                    return steps, productive, False, None
            elif steps == hold_until and tracker.settled():
                # The hold boundary can pass on a null tick; a run that
                # settled inside the fault window retires here.
                return steps, productive, False, None
    return steps, productive, False, None
