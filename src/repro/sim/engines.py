"""The engine registry: name -> engine factory, policies included.

Historically :func:`repro.sim.run.make_engine` was a hard-coded
``if engine == ...`` chain, so adding an engine meant editing
``run.py``.  The registry inverts that: engines register themselves
under a name, third-party code plugs in with :func:`register`, and
``"auto"`` is just a registered *policy* — a callable that inspects
the protocol and returns the name of a concrete engine.

Factories receive ``(protocol, *, graph=None, batch_fraction=0.05)``
and must return an :class:`~repro.sim.engine.Engine`; declare
``supports_graph=True`` if the engine accepts a non-complete
interaction graph (only the agent engine does today).  Policies
receive ``(protocol, *, graph=None, num_trials=1, n=None)`` — ``n``
is the population size when known — and return a registered engine
name (possibly another policy; chains are resolved with a cycle
guard).

Example — plugging in a custom engine::

    from repro.sim import engines

    class MyEngine(Engine):
        name = "mine"
        def _simulate(self, ...): ...

    engines.register("mine", lambda protocol, **_: MyEngine(protocol))
    run_trials(RunSpec(protocol, ..., engine="mine"))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import InvalidParameterError
from ..protocols.base import MAX_DENSE_STATES
from ..telemetry.context import current as current_telemetry
from . import kernels
from .agent_engine import AgentEngine
from .batch_engine import BatchEngine
from .count_engine import CountEngine
from .count_ensemble_engine import CountEnsembleEngine
from .engine import Engine
from .ensemble_engine import EnsembleEngine
from .gillespie import ContinuousTimeEngine, NullSkippingEngine

__all__ = [
    "register",
    "register_policy",
    "unregister",
    "get",
    "available",
    "is_policy",
    "create",
    "resolve_name",
    "NULL_SKIP_MAX_STATES",
    "ENSEMBLE_MAX_STATES",
    "COUNT_ENSEMBLE_MIN_N",
]

#: State-count threshold below which null skipping beats the count
#: engine (each productive event scans all ordered state pairs).
NULL_SKIP_MAX_STATES = 16

#: Largest state space for which the ensemble engine's dense
#: transition table may be materialized — aliased to the
#: :data:`~repro.protocols.base.MAX_DENSE_STATES` guard behind
#: :meth:`~repro.protocols.base.PopulationProtocol.transition_matrix`,
#: so the ``"auto"`` policy, the explicit-engine capability checks,
#: and the table itself agree on one threshold.  Structured protocols
#: whose product exceeds it stay on the sparse count/agent paths
#: (``protocol.supports_dense_tables`` is the canonical test).
ENSEMBLE_MAX_STATES = MAX_DENSE_STATES

#: Population threshold at which ``"auto"`` multi-trial batches switch
#: from the token-matrix ensemble (``O(T*n)`` memory, gather-based
#: sampling — fastest when the token matrix fits in cache) to the
#: count ensemble (``O(T*s)`` memory, collision-bounded batching —
#: faster and asymptotically leaner at paper-scale ``n``).  2**15 keeps
#: every small-``n`` baseline on the token engine, whose random streams
#: are pinned by regression fixtures.
COUNT_ENSEMBLE_MIN_N = 32_768


@dataclass(frozen=True)
class EngineEntry:
    """One registry row: either a factory or a policy, never both."""

    name: str
    factory: Callable | None = None
    policy: Callable | None = None
    supports_graph: bool = False


_REGISTRY: dict[str, EngineEntry] = {}


def register(name: str, factory: Callable, *,
             supports_graph: bool = False,
             replace: bool = False) -> None:
    """Register ``factory`` as the engine called ``name``.

    ``factory(protocol, *, graph=None, batch_fraction=0.05)`` must
    return an :class:`Engine`.  Re-registering an existing name
    requires ``replace=True`` (guards against accidental shadowing of
    the built-ins).
    """
    _add(EngineEntry(name=name, factory=factory,
                     supports_graph=supports_graph), replace)


def register_policy(name: str, policy: Callable, *,
                    replace: bool = False) -> None:
    """Register ``policy`` — a name-returning engine selector.

    ``policy(protocol, *, graph=None, num_trials=1)`` returns the name
    of a registered engine (or of another policy).
    """
    _add(EngineEntry(name=name, policy=policy), replace)


def _add(entry: EngineEntry, replace: bool) -> None:
    if not entry.name or not isinstance(entry.name, str):
        raise InvalidParameterError(
            f"engine name must be a non-empty string, got {entry.name!r}")
    if not replace and entry.name in _REGISTRY:
        raise InvalidParameterError(
            f"engine {entry.name!r} is already registered; pass "
            "replace=True to override it")
    _REGISTRY[entry.name] = entry


def unregister(name: str) -> None:
    """Remove ``name`` from the registry (primarily for tests)."""
    if name not in _REGISTRY:
        raise InvalidParameterError(f"engine {name!r} is not registered")
    del _REGISTRY[name]


def get(name: str) -> EngineEntry:
    """The registry entry for ``name``; raises with the valid names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown engine {name!r}; choose from {available()}"
        ) from None


def available() -> tuple[str, ...]:
    """All registered names (policies first, then engines, sorted)."""
    policies = sorted(n for n, e in _REGISTRY.items() if e.policy)
    engines = sorted(n for n, e in _REGISTRY.items() if e.factory)
    return tuple(policies + engines)


def is_policy(name: str) -> bool:
    return get(name).policy is not None


def resolve_name(name: str, protocol, *, graph=None,
                 num_trials: int = 1, n: int | None = None) -> str:
    """Follow policies until a concrete engine name is reached.

    ``n`` is the population size when the caller knows it (policies may
    use it to pick a scale-appropriate engine); ``None`` when unknown.
    """
    seen = []
    while True:
        entry = get(name)
        if entry.policy is None:
            return name
        seen.append(name)
        if len(seen) > len(_REGISTRY):
            raise InvalidParameterError(
                f"engine policy cycle: {' -> '.join(seen)}")
        name = entry.policy(protocol, graph=graph, num_trials=num_trials,
                            n=n)


def create(protocol, name: str, *, graph=None,
           batch_fraction: float = 0.05, num_trials: int = 1,
           n: int | None = None) -> Engine:
    """Instantiate the engine ``name`` resolves to for ``protocol``."""
    resolved = resolve_name(name, protocol, graph=graph,
                            num_trials=num_trials, n=n)
    entry = get(resolved)
    if graph is not None and not entry.supports_graph:
        raise InvalidParameterError(
            f"engine {resolved!r} only supports the complete graph; "
            "use engine='agent' for custom interaction graphs")
    if getattr(protocol, "is_round_based", False) and resolved != "rounds":
        raise InvalidParameterError(
            f"{protocol.name} is a round-based message-passing "
            f"protocol with no pairwise dynamics; engine {resolved!r} "
            "cannot run it (use engine='rounds' or 'auto')")
    return entry.factory(protocol, graph=graph,
                         batch_fraction=batch_fraction)


# ----------------------------------------------------------------------
# Built-in engines and the "auto" policy
# ----------------------------------------------------------------------

def _auto_policy(protocol, *, graph=None, num_trials: int = 1,
                 n: int | None = None) -> str:
    """The default selection: fastest *exact* engine for the job.

    Null-skipping for small state spaces, the agent engine whenever a
    graph is supplied, a vectorized ensemble engine for multi-trial
    batches of unanimity-settling protocols with mid-sized state
    spaces (the ``O(T*s)``-memory count ensemble once the population
    reaches :data:`COUNT_ENSEMBLE_MIN_N`, the token ensemble below
    it), and the count engine otherwise.  The approximate batch engine
    is never chosen implicitly.
    """
    if getattr(protocol, "is_round_based", False):
        # Synchronous message-passing protocols (repro.consensus) have
        # no pairwise dynamics; only the rounds engine can run them.
        return "rounds"
    if graph is not None:
        return "agent"
    if protocol.num_states <= NULL_SKIP_MAX_STATES:
        return "null-skipping"
    if (num_trials > 1
            and getattr(protocol, "unanimity_settles", False)
            and getattr(protocol, "supports_dense_tables",
                        protocol.num_states <= ENSEMBLE_MAX_STATES)):
        if n is not None and n >= COUNT_ENSEMBLE_MIN_N:
            return kernels.jit_engine_name("count-ensemble")
        return "ensemble"
    return kernels.jit_engine_name("count")


register("agent",
         lambda protocol, *, graph=None, **_:
         AgentEngine(protocol, graph=graph),
         supports_graph=True)
register("count", lambda protocol, **_: CountEngine(protocol))
register("null-skipping", lambda protocol, **_: NullSkippingEngine(protocol))
register("continuous-time",
         lambda protocol, **_: ContinuousTimeEngine(protocol))
register("batch",
         lambda protocol, *, batch_fraction=0.05, **_:
         BatchEngine(protocol, batch_fraction=batch_fraction))
def _require_dense_tables(protocol, name: str):
    """Capability guard for engines that vectorize via the dense table.

    Failing at engine *creation* (instead of deep inside the first
    batch) gives explicit ``engine="ensemble"`` requests on oversized
    structured protocols an actionable error.
    """
    if not getattr(protocol, "supports_dense_tables", True):
        raise InvalidParameterError(
            f"engine {name!r} vectorizes through the dense s x s "
            f"transition table, but {protocol.name} has "
            f"{protocol.num_states} states (> {ENSEMBLE_MAX_STATES}); "
            "use the sparse engines ('count', 'agent') for large "
            "structured state spaces")
    return protocol


def _rounds_factory(protocol, **_):
    # Imported lazily: the consensus subpackage is only paid for by
    # callers actually running round-based protocols.
    from ..consensus.rounds import RoundsEngine

    return RoundsEngine(protocol)


register("rounds", _rounds_factory)
register("ensemble",
         lambda protocol, **_:
         EnsembleEngine(_require_dense_tables(protocol, "ensemble")))
register("count-ensemble",
         lambda protocol, **_:
         CountEnsembleEngine(
             _require_dense_tables(protocol, "count-ensemble")))


def _jit_factory(jit_name: str, numpy_factory: Callable) -> Callable:
    """A factory for a JIT engine name that degrades observably.

    When no kernel backend is usable the factory returns the numpy
    twin instead of raising — the JIT engines are bit-identical to
    their twins, so the request is still honored exactly — and emits
    an ``engine.fallback`` telemetry event recording why, so the
    downgrade is never silent.  The ``jit_engines`` import stays
    inside the factory: it pulls in numpy-heavy engine modules and a
    compiled backend, which callers that never request a JIT name
    should not pay for.
    """

    def factory(protocol, *, graph=None, batch_fraction=0.05):
        if kernels.default_backend() is None:
            telemetry = current_telemetry()
            if telemetry.enabled:
                telemetry.event("engine.fallback", requested=jit_name,
                                reason=kernels.fallback_reason(),
                                protocol=protocol.name)
            return numpy_factory(protocol,
                                 batch_fraction=batch_fraction)
        from .kernels import jit_engines
        if jit_name == "count-jit":
            return jit_engines.JitCountEngine(protocol)
        if jit_name == "count-ensemble-jit":
            return jit_engines.JitCountEnsembleEngine(protocol)
        return jit_engines.JitBatchEngine(
            protocol, batch_fraction=batch_fraction)

    return factory


register("count-jit",
         _jit_factory("count-jit",
                      lambda protocol, **_: CountEngine(protocol)))
register("count-ensemble-jit",
         _jit_factory("count-ensemble-jit",
                      lambda protocol, **_:
                      CountEnsembleEngine(protocol)))
register("batch-jit",
         _jit_factory("batch-jit",
                      lambda protocol, *, batch_fraction=0.05, **_:
                      BatchEngine(protocol,
                                  batch_fraction=batch_fraction)))
register_policy("auto", _auto_policy)
