"""Incremental convergence (settledness) tracking for engines.

Engines must notice the *first* interaction after which a run is
irrevocably converged, without paying for a full configuration scan on
every step.  Two trackers implement this:

* :class:`UnanimitySettleTracker` — O(1) per interaction.  Valid for
  protocols that declare ``unanimity_settles = True``, i.e. whose
  :meth:`~repro.protocols.base.PopulationProtocol.is_settled` is
  exactly "every agent has the same defined output" (true for AVC, the
  three- and four-state baselines, and the voter model; each protocol's
  docstring carries the absorbing-ness argument).
* :class:`GenericSettleTracker` — re-evaluates ``is_settled`` only when
  the *support* of the configuration changes.  This is exact for every
  protocol in the library because ``is_settled`` is required to be a
  function of the support alone (a documented contract, enforced by
  tests).
"""

from __future__ import annotations

import numpy as np

from ..protocols.base import PopulationProtocol

__all__ = [
    "SettleTracker",
    "UnanimitySettleTracker",
    "GenericSettleTracker",
    "make_settle_tracker",
]


class SettleTracker:
    """Interface: engines update counts, then notify the tracker."""

    def update(self, i: int, j: int, new_i: int, new_j: int) -> None:
        """Notify that one agent moved ``i -> new_i`` and one ``j -> new_j``."""
        raise NotImplementedError

    def reset(self, counts) -> None:
        """Resynchronize with a count vector changed wholesale.

        Used by the batch engine, which rewrites many agents per round
        instead of reporting individual transitions.
        """
        raise NotImplementedError

    def shift(self, old: int, new: int) -> None:
        """Notify that one agent was rewritten ``old -> new`` (a fault)."""
        raise NotImplementedError

    def adjust(self, index: int, delta: int) -> None:
        """Notify that ``delta`` agents joined (+) or left (-) ``index``."""
        raise NotImplementedError

    def settled(self) -> bool:
        """Whether the current configuration is settled."""
        raise NotImplementedError

    def decision(self):
        """The unanimous output if settled, else ``None``."""
        raise NotImplementedError


class UnanimitySettleTracker(SettleTracker):
    """O(1) tracker counting agents per output class."""

    __slots__ = ("_outputs", "_undecided", "_zeros", "_ones")

    def __init__(self, protocol: PopulationProtocol, counts):
        self._outputs = protocol.output_array()
        self._undecided = 0
        self._zeros = 0
        self._ones = 0
        self.reset(counts)

    def reset(self, counts) -> None:
        outputs = self._outputs
        self._undecided = 0
        self._zeros = 0
        self._ones = 0
        for index, count in enumerate(counts):
            self._bump(outputs[index], int(count))

    def _bump(self, output: int, delta: int) -> None:
        if output < 0:
            self._undecided += delta
        elif output == 0:
            self._zeros += delta
        else:
            self._ones += delta

    def update(self, i: int, j: int, new_i: int, new_j: int) -> None:
        outputs = self._outputs
        self._bump(outputs[i], -1)
        self._bump(outputs[j], -1)
        self._bump(outputs[new_i], 1)
        self._bump(outputs[new_j], 1)

    def shift(self, old: int, new: int) -> None:
        outputs = self._outputs
        self._bump(outputs[old], -1)
        self._bump(outputs[new], 1)

    def adjust(self, index: int, delta: int) -> None:
        self._bump(self._outputs[index], delta)

    def settled(self) -> bool:
        if self._undecided:
            return False
        return (self._zeros == 0) != (self._ones == 0)

    def decision(self):
        if not self.settled():
            return None
        return 1 if self._ones else 0


class GenericSettleTracker(SettleTracker):
    """Exact tracker re-checking ``is_settled`` on support changes.

    Holds a live reference to the engine's count sequence; ``update``
    is called *after* the counts were mutated.
    """

    __slots__ = ("_protocol", "_counts", "_outputs", "_dirty", "_settled",
                 "_count_sensitive")

    def __init__(self, protocol: PopulationProtocol, counts):
        self._protocol = protocol
        self._counts = counts
        self._outputs = protocol.output_array()
        self._dirty = True
        self._settled = False
        self._count_sensitive = not getattr(protocol,
                                            "settled_support_only", True)

    def update(self, i: int, j: int, new_i: int, new_j: int) -> None:
        if self._count_sensitive:
            # Settledness may depend on exact counts (e.g. leader
            # election's "exactly one leader"): re-evaluate after
            # every state change.
            self._dirty = True
            return
        counts = self._counts
        # Support can only change if a touched state just vanished or
        # just appeared (count 0 after losing one / count 1 or 2 after
        # gaining, conservatively flagged).
        if (counts[i] == 0 or counts[j] == 0
                or counts[new_i] <= 2 or counts[new_j] <= 2):
            self._dirty = True

    def shift(self, old: int, new: int) -> None:
        # A fault rewrite can change the support arbitrarily.
        self._dirty = True

    def adjust(self, index: int, delta: int) -> None:
        self._dirty = True

    def reset(self, counts) -> None:
        # The live reference may have been replaced in place; any bulk
        # rewrite simply invalidates the cached verdict.
        self._counts = counts
        self._dirty = True

    def settled(self) -> bool:
        if self._dirty:
            states = self._protocol.states
            sparse = {states[k]: int(c)
                      for k, c in enumerate(self._counts) if c}
            self._settled = self._protocol.is_settled(sparse)
            self._dirty = False
        return self._settled

    def decision(self):
        if not self.settled():
            return None
        outputs = self._outputs
        seen = None
        for index, count in enumerate(self._counts):
            if not count:
                continue
            value = outputs[index]
            if value < 0:
                return None
            if seen is None:
                seen = int(value)
            elif seen != value:
                return None
        return seen


def make_settle_tracker(protocol: PopulationProtocol, counts) -> SettleTracker:
    """Pick the cheapest exact tracker for ``protocol``."""
    if getattr(protocol, "unanimity_settles", False):
        return UnanimitySettleTracker(protocol, counts)
    return GenericSettleTracker(protocol, counts)


def decision_of_counts(protocol: PopulationProtocol,
                       counts: np.ndarray):
    """Unanimous output of a dense count vector, or ``None``."""
    outputs = protocol.output_array()
    seen = None
    for index, count in enumerate(counts):
        if not count:
            continue
        value = outputs[index]
        if value < 0:
            return None
        if seen is None:
            seen = int(value)
        elif seen != value:
            return None
    return seen
