"""Ensemble engine: exact simulation of many trials at once.

Paper-scale sweeps need hundreds of independent trials per ``(n, eps,
s)`` point.  Each trial is an independent copy of the *same* Markov
chain, so instead of looping trials in Python we advance all of them
simultaneously: the ensemble state is a ``(T, n)`` token matrix (one
row of agent states per trial) plus a ``(T, s)`` counts matrix, and
every *round* performs a window of interactions per live trial with a
fixed number of vectorized numpy operations.

Sampling, per trial row:

1. one uniform draw from ``[0, n(n-1))`` encodes the initiator token
   ``u`` and the responder token ``v`` (``u, v = divmod(r, n - 1)``);
2. the responder is sampled *without replacement* by skipping the
   initiator's token (``v += v >= u``) — tokens on the complete graph
   are exchangeable, so no shuffle is needed;
3. the states are two *gathers* from the token matrix (``i =
   agents[row, u]``, ``j = agents[row, v]``) — no cumulative sums or
   binary searches;
4. the transition goes through the protocol's dense ``s x s`` index
   tables; token cells are fancy-assigned and counts updated with
   ``np.add.at`` scatter ops (duplicate indices accumulate).

Each round *speculatively* samples a window of consecutive
interactions per row from its current configuration.  Null
interactions leave the configuration unchanged, so a row's
speculative draws are exactly its sequential draws up to and
including its first productive interaction; the rest is discarded.
A row therefore advances by ``min(window, geometric null-run + 1)``
interactions per round — the vectorized analogue of the null-skipping
engine's geometric jumps, without per-pair productivity weights —
and the window adapts to the observed null rate.  Trials keep
individual step clocks, so reported convergence steps are exact.

This is the :class:`~repro.sim.count_engine.CountEngine` chain,
trial-for-trial: the per-row distribution of ``(i, j)`` is ``c_i (c_j
- [i = j]) / (n (n - 1))``, so results are exact in distribution — not
the :class:`~repro.sim.batch_engine.BatchEngine` matching
approximation.  Converged rows are recorded and *compacted* out of the
matrices, so the live ensemble shrinks as trials finish and late
stragglers run at small-``T`` cost.

Convergence is tracked with O(1)-per-interaction unanimity class
counts (per changed row: agents with undecided / output-0 / output-1
states), which is why the vectorized path requires
``unanimity_settles = True`` — true for AVC, the three- and
four-state baselines, and the voter model.  For other protocols use
:meth:`EnsembleEngine.run` (exact, any protocol) or the count engine.

Throughput: gather-based sampling costs a few tens of nanoseconds per
drawn interaction plus a constant per-round dispatch overhead shared
by all ``T`` rows — well under a microsecond per interaction for
ensembles of ~64+ trials, several times past the count engine's
Python loop (measured ~7x on AVC s=66, n=10^4, 100 trials).
"""

from __future__ import annotations

import time
from collections.abc import Mapping

import numpy as np

from ..errors import InvalidParameterError, SimulationError
from ..faults import FaultRuntime, active_faults
from ..protocols.base import PopulationProtocol, State
from ..rng import ensure_rng
from ..telemetry.context import current as current_telemetry
from .engine import Engine, check_budget_sanity
from .ensemble_common import (
    class_tables,
    emit_chunk_telemetry,
    emit_fault_telemetry,
    flat_transition_tables,
)
from .results import RunResult

__all__ = ["EnsembleEngine"]

#: Block size for the scalar (single-run) compatibility path.
_BLOCK = 8192

#: Bounds for the adaptive speculative-sampling window (interactions
#: drawn per row per round in the vectorized path).
_MIN_WINDOW = 4
_MAX_WINDOW = 256


class EnsembleEngine(Engine):
    """Exact vectorized multi-trial simulation (complete graph only).

    The engine has two entry points:

    * :meth:`run_ensemble` — the vectorized path: ``T`` independent
      trials advanced together from one initial configuration,
      returning one :class:`RunResult` per trial.  Requires
      ``unanimity_settles`` protocols; recorders and event observers
      are not supported (there is no single trajectory to record).
    * :meth:`run` (inherited) — the standard single-run API, exact for
      any protocol and supporting observers/recorders; provided for
      validation and interface completeness.  For fast single runs
      prefer the count engine.

    ``run_trials(..., engine="ensemble")`` routes whole trial batches
    through :meth:`run_ensemble`; see :mod:`repro.sim.run`.
    """

    name = "ensemble"
    supports_faults = True
    supports_byzantine = True

    # ------------------------------------------------------------------
    # Vectorized ensemble path
    # ------------------------------------------------------------------

    def run_ensemble(self, initial_counts: Mapping[State, int], *,
                     num_trials: int,
                     rng=None,
                     max_steps: int | None = None,
                     max_parallel_time: float | None = None,
                     expected: int | None = None,
                     faults=None) -> list[RunResult]:
        """Simulate ``num_trials`` independent executions at once.

        Every trial starts from ``initial_counts`` and runs until it
        settles or the per-trial interaction budget is exhausted.
        Returns the per-trial results in trial order.  The ensemble
        draws from a single generator; with a fixed seed the whole
        batch is reproducible, and each trial's chain is exactly the
        count-engine chain in distribution.
        """
        protocol = self.protocol
        if num_trials < 1:
            raise InvalidParameterError(
                f"num_trials must be >= 1, got {num_trials}")
        if not getattr(protocol, "unanimity_settles", False):
            raise SimulationError(
                f"{protocol.name}: the vectorized ensemble path requires "
                "unanimity_settles protocols; use EnsembleEngine.run() or "
                "CountEngine for generic settledness predicates")
        base = protocol.counts_to_vector(initial_counts)
        n = int(base.sum())
        if n < 2:
            raise InvalidParameterError(
                f"population must have at least 2 agents, got {n}")
        budget = self._resolve_budget(n, max_steps, max_parallel_time)
        check_budget_sanity(budget)
        generator = ensure_rng(rng)
        runtime = None
        active = active_faults(faults)
        if active is not None:
            # Adversarial schedulers need the explicit-agents engine;
            # everything else is injected vectorized below.
            runtime = FaultRuntime.build(active, protocol,
                                         expected=expected,
                                         scheduler_ok=False,
                                         byzantine_ok=True, n=n)
        # Telemetry records per-chunk aggregates only — the hot loop
        # just bumps two local ints per vectorized round.
        telemetry = current_telemetry()
        started = time.perf_counter() if telemetry.enabled else 0.0
        rounds = 0
        drawn = 0

        s = protocol.num_states
        table_x, table_y, nonnull, _ = flat_transition_tables(protocol)
        # Output class per state: 0 = undecided, 1 = output 0, 2 = output 1.
        state_class, class_matrix = class_tables(protocol)
        base_class = np.bincount(state_class, weights=base,
                                 minlength=3).astype(np.int64)

        def row_result(steps, settled, decision, vector, productive,
                       events=None):
            return RunResult(
                protocol_name=protocol.name,
                engine_name=self.name,
                n=n,
                steps=int(steps),
                settled=settled,
                decision=decision,
                expected=expected,
                final_counts=protocol.vector_to_counts(vector),
                productive_steps=int(productive),
                continuous_time=None,
                frozen=False,
                fault_events=events,
            )

        def class_decision(class_counts):
            return 1 if class_counts[2] > 0 else 0

        results: list[RunResult | None] = [None] * num_trials
        if ((base_class[0] == 0
                and (base_class[1] == 0) != (base_class[2] == 0))
                and (runtime is None or runtime.hold_until == 0)):
            # Already settled: every trial converges at step 0.  (A
            # fault window that can unsettle the configuration holds
            # the trials in the arena instead — see repro.faults.)
            result = row_result(0, True, class_decision(base_class), base,
                                0, runtime.events() if runtime else None)
            results = [result] * num_trials
            if telemetry.enabled:
                self._emit_chunk_telemetry(
                    telemetry, time.perf_counter() - started, n,
                    results, rounds, drawn)
            return results

        if runtime is not None:
            return self._run_ensemble_faulted(
                runtime, base, n, num_trials, budget, generator,
                telemetry, started, row_result)

        counts = np.tile(base, (num_trials, 1))          # (T, s) live matrix
        # Token matrix: agents[r, t] is the state of token t in trial
        # r.  On the complete graph the tokens are exchangeable, so a
        # uniform token draw hits a uniform agent and no shuffle is
        # needed; two gathers replace the cumulative-sum search a
        # count-vector representation would require.  int32 keeps the
        # matrix compact (states are capped at 4096 by run.py).
        agents = np.tile(np.repeat(np.arange(s, dtype=np.int32), base),
                         (num_trials, 1))                # (T, n) tokens
        trial_ids = np.arange(num_trials)
        productive = np.zeros(num_trials, dtype=np.int64)
        steps_r = np.zeros(num_trials, dtype=np.int64)   # per-trial clock
        live = num_trials
        span = n * (n - 1)
        row_idx = np.arange(live)[None, :]   # broadcast row selector
        counts_flat = counts.reshape(-1)     # view; tracks updates
        window = _MIN_WINDOW

        # Each round speculatively samples a window of ``window``
        # consecutive interactions for every live row from its
        # *current* configuration.  Null interactions leave it
        # unchanged, so a row's speculative draws are exactly its
        # sequential draws up to and including its first productive
        # interaction; everything after it is discarded (the
        # distribution over the next pair changed).  Each row thus
        # advances by min(window, its geometric null-run + 1)
        # interactions per round, amortizing the fixed numpy dispatch
        # cost of a round across many null steps — the vectorized
        # analogue of the null-skipping engine's geometric jumps,
        # without needing per-pair productivity weights.
        while live:
            remaining = budget - steps_r     # >= 1 for every live row
            w = min(window, int(remaining.max()))
            rounds += 1
            drawn += w * live
            raw = generator.integers(0, span, size=(w, live),
                                     dtype=np.int64)
            u, v = np.divmod(raw, n - 1)
            # Responder without replacement: v indexes the n - 1
            # tokens left after removing the initiator's token u.
            v += v >= u
            i = agents[row_idx, u]
            j = agents[row_idx, v]
            pair = i * s + j
            changed = nonnull[pair]          # (w, live)

            hit = changed.any(axis=0)
            first = np.where(hit, np.argmax(changed, axis=0), w)
            # A row consumes its null prefix plus (budget permitting)
            # the productive interaction that ends it.
            apply_mask = hit & (first < remaining)
            consumed = np.where(apply_mask, first + 1,
                                np.minimum(w, remaining))
            steps_r += consumed

            idx = np.flatnonzero(apply_mask)
            settled_live = np.zeros(live, dtype=bool)
            if idx.size:
                productive[idx] += 1
                at = first[idx]
                old_i = i[at, idx].astype(np.int64)
                old_j = j[at, idx].astype(np.int64)
                hot = old_i * s + old_j
                new_i = table_x[hot]
                new_j = table_y[hot]
                idx2 = np.concatenate([idx, idx])
                agents[idx2, np.concatenate([u[at, idx], v[at, idx]])] \
                    = np.concatenate([new_i, new_j])
                base_flat = idx * s
                # Count updates through flat indices; duplicate cells
                # within a row accumulate correctly.
                np.subtract.at(
                    counts_flat,
                    np.concatenate([base_flat + old_i,
                                    base_flat + old_j]),
                    1)
                np.add.at(
                    counts_flat,
                    np.concatenate([base_flat + new_i,
                                    base_flat + new_j]),
                    1)

                # Only rows that changed can have settled; their
                # per-class agent counts come from one small matmul.
                cls = counts[idx] @ class_matrix
                done_sub = ((cls[:, 0] == 0)
                            & ((cls[:, 1] == 0) != (cls[:, 2] == 0)))
                for where in np.flatnonzero(done_sub):
                    pos = idx[where]
                    results[trial_ids[pos]] = row_result(
                        steps_r[pos], True, class_decision(cls[where]),
                        counts[pos], productive[pos])
                settled_live[idx[done_sub]] = True

            exhausted = steps_r >= budget
            retire = settled_live | exhausted
            if retire.any():
                for pos in np.flatnonzero(exhausted & ~settled_live):
                    # Budget exhausted with the trial still undecided.
                    results[trial_ids[pos]] = row_result(
                        budget, False, None, counts[pos], productive[pos])
                keep = ~retire
                counts = counts[keep]
                agents = agents[keep]
                trial_ids = trial_ids[keep]
                productive = productive[keep]
                steps_r = steps_r[keep]
                live = len(trial_ids)
                if not live:
                    break
                row_idx = np.arange(live)[None, :]
                counts_flat = counts.reshape(-1)
            # Track ~2x the mean consumed run length so most rows find
            # their next productive interaction within the window.
            window = int(np.clip(2.0 * consumed.mean(),
                                 _MIN_WINDOW, _MAX_WINDOW))
        if telemetry.enabled:
            self._emit_chunk_telemetry(
                telemetry, time.perf_counter() - started, n,
                results, rounds, drawn)
        return results  # type: ignore[return-value]

    def _run_ensemble_faulted(self, runtime, base, n, num_trials, budget,
                              generator, telemetry, started, row_result):
        """Vectorized ensemble loop with mask-based fault injection.

        The clean path's speculation stays exact here because every
        fault event is a *configuration change*: a window's draws are
        valid exactly up to the first tick whose configuration differs
        from the one they were drawn from, and faults — like productive
        interactions — end that prefix.  Dropped meetings, one-way
        faults on null pairs, byzantine meetings whose lie induces a
        null transition, and floor-suppressed crashes leave the
        configuration intact, so speculation runs straight through
        them.  Byzantine corruption is applied as a masked rewrite of
        the presented pair before the transition gather (see the
        ``byz_f`` branch below).

        Two extra pieces of bookkeeping versus the clean loop:

        * ``n_live`` — per-row live population under churn; pairs are
          then drawn as floats scaled by each row's own ``n(n-1)``.
        * the *hold boundary* — rows below ``runtime.hold_until`` cap
          their consumption at it, so a trial that settles inside the
          fault window retires at exactly ``hold_until`` (matching the
          sequential engines tick for tick).
        """
        protocol = self.protocol
        s = protocol.num_states
        # nonnull_ow: under a one-way fault only the initiator
        # transitions, so the pair is productive iff its state changes.
        table_x, table_y, nonnull_full, nonnull_ow = \
            flat_transition_tables(protocol)
        _, class_matrix = class_tables(protocol)

        flip_p = runtime.flip_prob
        crash_p = runtime.crash_prob
        join_p = runtime.join_prob
        drop_p = runtime.drop_prob
        ow_p = runtime.oneway_prob
        byz_f = runtime.byz_f
        horizon = runtime.horizon
        hold_until = runtime.hold_until
        floor = runtime.floor
        churn = runtime.churn

        rounds = 0
        drawn = 0
        results: list[RunResult | None] = [None] * num_trials
        counts = np.tile(base, (num_trials, 1))
        agents = np.tile(np.repeat(np.arange(s, dtype=np.int32), base),
                         (num_trials, 1))
        trial_ids = np.arange(num_trials)
        productive = np.zeros(num_trials, dtype=np.int64)
        steps_r = np.zeros(num_trials, dtype=np.int64)
        n_live = np.full(num_trials, n, dtype=np.int64)
        ev_kinds = ["flips", "crashes", "joins", "drops", "oneway"]
        if byz_f:
            # Only byzantine runs carry the byzantine counters, so
            # pre-byzantine fault models keep their exact event dicts.
            ev_kinds += ["byzantine_lies", "byzantine_meetings"]
        ev = {kind: np.zeros(num_trials, dtype=np.int64)
              for kind in ev_kinds}
        live = num_trials
        row_sel = np.arange(live)[None, :]
        counts_flat = counts.reshape(-1)
        window = _MIN_WINDOW

        def finish(pos, steps, settled, decision):
            events = {kind: int(ev[kind][pos]) for kind in ev}
            for kind, value in events.items():
                setattr(runtime, kind, getattr(runtime, kind) + value)
            results[trial_ids[pos]] = row_result(
                steps, settled, decision, counts[pos], productive[pos],
                events)

        while live:
            remaining = budget - steps_r
            if hold_until:
                cap_r = np.where(steps_r < hold_until,
                                 np.minimum(hold_until - steps_r,
                                            remaining),
                                 remaining)
            else:
                cap_r = remaining
            w = min(window, int(cap_r.max()))
            rounds += 1
            drawn += w * live

            if churn:
                span_r = n_live * (n_live - 1)
                raw = (generator.random((w, live))
                       * span_r[None, :]).astype(np.int64)
                np.minimum(raw, span_r[None, :] - 1, out=raw)
                u, v = np.divmod(raw, (n_live - 1)[None, :])
            else:
                raw = generator.integers(0, n * (n - 1), size=(w, live),
                                         dtype=np.int64)
                u, v = np.divmod(raw, n - 1)
            v += v >= u
            i = agents[row_sel, u]
            j = agents[row_sel, v]
            pair = i * s + j

            if horizon is None:
                armed = None  # armed forever
            else:
                armed = ((steps_r[None, :] + np.arange(w)[:, None])
                         < horizon)

            def bernoulli(p):
                if p <= 0.0:
                    return None
                mask = generator.random((w, live)) < p
                if armed is not None:
                    mask &= armed
                return mask

            drop_ev = bernoulli(drop_p)
            ow_ev = bernoulli(ow_p)
            if ow_ev is not None and drop_ev is not None:
                ow_ev &= ~drop_ev  # a dropped meeting cannot be one-way
            flip_ev = bernoulli(flip_p)
            crash_ev = bernoulli(crash_p)
            join_ev = bernoulli(join_p)

            if byz_f:
                # Hypergeometric possession per meeting: initiator
                # byzantine with probability f/n, responder with
                # (f - [initiator byzantine])/(n - 1) — the fixed
                # corrupted-subset adversary in distribution (tokens
                # are exchangeable), and exactly the scalar engines'
                # chain.  Drawn as a separate batch after the fault
                # masks so pre-byzantine streams stay bit-identical.
                b1 = generator.random((w, live)) * n < byz_f
                b2 = (generator.random((w, live)) * (n - 1)
                      < byz_f - b1.astype(np.int64))
                if armed is not None:
                    b1 &= armed
                    b2 &= armed
                # One lie per live row, valid for the whole window:
                # speculation only consumes draws up to the first
                # configuration change, so the counts the adaptive
                # adversary reads are current for every consumed tick.
                lie_r = runtime.byzantine_lie_rows(counts)
                pres = (np.where(b1, lie_r[None, :], i) * s
                        + np.where(b2, lie_r[None, :], j))
                # A byzantine participant presents the lie but never
                # updates its own state.
                ni = np.where(b1, i, table_x[pres])
                nj = np.where(b2, j, table_y[pres])
                if ow_ev is not None:
                    nj = np.where(ow_ev, j, nj)
                inter_change = (ni != i) | (nj != j)
            else:
                ni = nj = None
                inter_change = nonnull_full[pair]
                if ow_ev is not None:
                    inter_change = np.where(ow_ev, nonnull_ow[pair],
                                            inter_change)
            if drop_ev is not None:
                inter_change &= ~drop_ev
            config_change = inter_change
            for mask in (flip_ev, crash_ev, join_ev):
                if mask is not None:
                    config_change = config_change | mask

            hit = config_change.any(axis=0)
            first = np.where(hit, np.argmax(config_change, axis=0), w)
            apply_mask = hit & (first < cap_r)
            consumed = np.where(apply_mask, first + 1,
                                np.minimum(w, cap_r))
            steps_pre = steps_r
            steps_r = steps_r + consumed

            if drop_ev is not None or ow_ev is not None or byz_f:
                prefix = np.arange(w)[:, None] < consumed[None, :]
                if drop_ev is not None:
                    ev["drops"] += (drop_ev & prefix).sum(axis=0)
                if ow_ev is not None:
                    ev["oneway"] += (ow_ev & prefix).sum(axis=0)
                if byz_f:
                    meet = b1 | b2
                    if drop_ev is not None:
                        meet &= ~drop_ev  # dropped meetings carry no lie
                    meet &= prefix
                    ev["byzantine_meetings"] += meet.sum(axis=0)
                    ev["byzantine_lies"] += np.where(
                        meet,
                        b1.astype(np.int64) + b2.astype(np.int64),
                        0).sum(axis=0)

            idx = np.flatnonzero(apply_mask)
            if idx.size:
                at = first[idx]
                # 1) the interaction (unless dropped; one-way rows keep
                #    the responder's state)
                old_i = i[at, idx].astype(np.int64)
                old_j = j[at, idx].astype(np.int64)
                if byz_f:
                    # ni/nj already fold in the lies and one-way mask.
                    new_i = ni[at, idx]
                    new_j = nj[at, idx]
                else:
                    hot = old_i * s + old_j
                    new_i = table_x[hot]
                    new_j = table_y[hot]
                    if ow_ev is not None:
                        new_j = np.where(ow_ev[at, idx], old_j, new_j)
                dropped_at = (drop_ev[at, idx] if drop_ev is not None
                              else np.zeros(idx.size, dtype=bool))
                prod = (~dropped_at) & ((new_i != old_i)
                                        | (new_j != old_j))
                rows_p = idx[prod]
                if rows_p.size:
                    productive[rows_p] += 1
                    atp = first[rows_p]
                    rows2 = np.concatenate([rows_p, rows_p])
                    agents[rows2,
                           np.concatenate([u[atp, rows_p],
                                           v[atp, rows_p]])] \
                        = np.concatenate([new_i[prod],
                                          new_j[prod]]).astype(np.int32)
                    base_flat = rows_p * s
                    np.subtract.at(
                        counts_flat,
                        np.concatenate([base_flat + old_i[prod],
                                        base_flat + old_j[prod]]),
                        1)
                    np.add.at(
                        counts_flat,
                        np.concatenate([base_flat + new_i[prod],
                                        base_flat + new_j[prod]]),
                        1)
                # 2) flips
                if flip_ev is not None:
                    rows_f = idx[flip_ev[at, idx]]
                    if rows_f.size:
                        ev["flips"][rows_f] += 1
                        position = (generator.random(rows_f.size)
                                    * n_live[rows_f]).astype(np.int64)
                        old = agents[rows_f, position].astype(np.int64)
                        new = runtime.sample_flip_states(generator,
                                                         rows_f.size)
                        moved = new != old
                        rows_m = rows_f[moved]
                        if rows_m.size:
                            agents[rows_m, position[moved]] \
                                = new[moved].astype(np.int32)
                            np.subtract.at(counts_flat,
                                           rows_m * s + old[moved], 1)
                            np.add.at(counts_flat,
                                      rows_m * s + new[moved], 1)
                # 3) crashes (floor-guarded, swap-remove the last token)
                if crash_ev is not None:
                    rows_k = idx[crash_ev[at, idx]]
                    rows_k = rows_k[n_live[rows_k] > floor]
                    if rows_k.size:
                        ev["crashes"][rows_k] += 1
                        position = (generator.random(rows_k.size)
                                    * n_live[rows_k]).astype(np.int64)
                        old = agents[rows_k, position].astype(np.int64)
                        agents[rows_k, position] \
                            = agents[rows_k, n_live[rows_k] - 1]
                        n_live[rows_k] -= 1
                        np.subtract.at(counts_flat, rows_k * s + old, 1)
                # 4) joins (grow the token matrix when at capacity)
                if join_ev is not None:
                    rows_j = idx[join_ev[at, idx]]
                    if rows_j.size:
                        capacity = agents.shape[1]
                        need = int(n_live[rows_j].max()) + 1
                        if need > capacity:
                            grow = max(need - capacity,
                                       max(8, capacity // 4))
                            agents = np.concatenate(
                                [agents,
                                 np.zeros((agents.shape[0], grow),
                                          dtype=np.int32)], axis=1)
                        new = runtime.sample_join_states(generator,
                                                         rows_j.size)
                        agents[rows_j, n_live[rows_j]] \
                            = new.astype(np.int32)
                        n_live[rows_j] += 1
                        ev["joins"][rows_j] += 1
                        np.add.at(counts_flat, rows_j * s + new, 1)

            # Settledness: rows that changed, plus rows crossing the
            # hold boundary this round (their settled verdict becomes
            # terminal exactly at hold_until).
            settled_live = np.zeros(live, dtype=bool)
            check = idx
            if hold_until:
                boundary = np.flatnonzero((steps_pre < hold_until)
                                          & (steps_r >= hold_until))
                check = np.union1d(idx, boundary)
            if check.size:
                cls = counts[check] @ class_matrix
                done_sub = ((cls[:, 0] == 0)
                            & ((cls[:, 1] == 0) != (cls[:, 2] == 0))
                            & (steps_r[check] >= hold_until))
                for where in np.flatnonzero(done_sub):
                    pos = check[where]
                    finish(pos, steps_r[pos], True,
                           1 if cls[where, 2] > 0 else 0)
                    settled_live[pos] = True
            exhausted = steps_r >= budget
            retire = settled_live | exhausted
            if retire.any():
                for pos in np.flatnonzero(exhausted & ~settled_live):
                    finish(pos, budget, False, None)
                keep = ~retire
                counts = counts[keep]
                agents = agents[keep]
                trial_ids = trial_ids[keep]
                productive = productive[keep]
                steps_r = steps_r[keep]
                n_live = n_live[keep]
                for kind in ev:
                    ev[kind] = ev[kind][keep]
                live = len(trial_ids)
                if not live:
                    break
                row_sel = np.arange(live)[None, :]
                counts_flat = counts.reshape(-1)
            window = int(np.clip(2.0 * consumed.mean(),
                                 _MIN_WINDOW, _MAX_WINDOW))

        if telemetry.enabled:
            self._emit_chunk_telemetry(
                telemetry, time.perf_counter() - started, n,
                results, rounds, drawn)
            emit_fault_telemetry(self, telemetry, results, runtime)
        return results  # type: ignore[return-value]

    def _emit_chunk_telemetry(self, telemetry, wall: float, n: int,
                              results, rounds: int, drawn: int) -> None:
        emit_chunk_telemetry(self, telemetry, wall, n, results, rounds,
                             drawn)

    # ------------------------------------------------------------------
    # Scalar compatibility path (Engine.run)
    # ------------------------------------------------------------------

    def _simulate(self, counts, n, rng, max_steps, tracker, recorder):
        """Single-trial loop sampling the same chain as the ensemble.

        Exact for any protocol (settledness goes through the standard
        tracker); O(s) per interaction, so it exists for validation
        and API symmetry rather than speed.
        """
        check_budget_sanity(max_steps)
        lookup = self._transition_lookup()
        span = n * (n - 1)
        steps = 0
        productive = 0
        while steps < max_steps:
            block = min(_BLOCK, max_steps - steps)
            raw = rng.integers(0, span, size=block, dtype=np.int64)
            first_targets, second_targets = (
                part.tolist() for part in divmod(raw, n - 1))
            for u, v in zip(first_targets, second_targets):
                steps += 1
                acc = 0
                for i, count in enumerate(counts):
                    acc += count
                    if u < acc:
                        break
                # Responder without replacement: skip the last i-token.
                if v >= acc - 1:
                    v += 1
                acc2 = 0
                for j, count in enumerate(counts):
                    acc2 += count
                    if v < acc2:
                        break
                new_i, new_j = lookup(i, j)
                if new_i == i and new_j == j:
                    continue
                productive += 1
                counts[i] -= 1
                counts[j] -= 1
                counts[new_i] += 1
                counts[new_j] += 1
                tracker.update(i, j, new_i, new_j)
                if recorder is not None:
                    recorder.maybe_record(steps, counts)
                if tracker.settled():
                    return steps, productive, False, None
        return steps, productive, False, None

    def _simulate_faulted(self, counts, n, rng, max_steps, tracker,
                          recorder, runtime):
        # The scalar path shares the count engine's faulted loop (same
        # chain, Fenwick-backed); the vectorized injection lives in
        # _run_ensemble_faulted.
        from .count_engine import simulate_faulted_counts

        return simulate_faulted_counts(self, counts, n, rng, max_steps,
                                       tracker, recorder, runtime)
