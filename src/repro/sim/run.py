"""High-level run API: one call from protocol to result.

This is the front door most users want::

    from repro import AVCProtocol, run_majority

    protocol = AVCProtocol.with_num_states(64)
    result = run_majority(protocol, n=10_001, epsilon=1 / 10_001, seed=7)

``engine="auto"`` picks the fastest *exact* engine for the protocol:
null-skipping for small state spaces, the count engine otherwise, and
the agent engine whenever an interaction graph is supplied.  The
approximate batch engine is never chosen implicitly.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..errors import InvalidParameterError
from ..protocols.base import MAJORITY_A, MAJORITY_B, MajorityProtocol, State
from ..rng import ensure_rng, spawn
from .agent_engine import AgentEngine
from .batch_engine import BatchEngine
from .count_engine import CountEngine
from .engine import Engine
from .gillespie import ContinuousTimeEngine, NullSkippingEngine
from .results import RunResult, TrialStats

__all__ = ["make_engine", "run", "run_majority", "run_trials",
           "ENGINE_NAMES"]

#: Engines selectable by name in the high-level API.
ENGINE_NAMES = ("auto", "agent", "count", "null-skipping",
                "continuous-time", "batch")

#: State-count threshold below which null skipping beats the count
#: engine (each productive event scans all ordered state pairs).
_NULL_SKIP_MAX_STATES = 16


def make_engine(protocol, engine: str | Engine = "auto", *,
                graph=None, batch_fraction: float = 0.05) -> Engine:
    """Instantiate the requested engine for ``protocol``.

    ``engine`` may also be an :class:`~repro.sim.engine.Engine`
    instance, which is passed through (``graph`` must then be absent).
    """
    if isinstance(engine, Engine):
        if graph is not None:
            raise InvalidParameterError(
                "pass the graph to the engine constructor, not to run()")
        return engine
    if engine == "auto":
        if graph is not None:
            engine = "agent"
        elif protocol.num_states <= _NULL_SKIP_MAX_STATES:
            engine = "null-skipping"
        else:
            engine = "count"
    if graph is not None and engine != "agent":
        raise InvalidParameterError(
            f"engine {engine!r} only supports the complete graph; "
            "use engine='agent' for custom interaction graphs")
    if engine == "agent":
        return AgentEngine(protocol, graph=graph)
    if engine == "count":
        return CountEngine(protocol)
    if engine == "null-skipping":
        return NullSkippingEngine(protocol)
    if engine == "continuous-time":
        return ContinuousTimeEngine(protocol)
    if engine == "batch":
        return BatchEngine(protocol, batch_fraction=batch_fraction)
    raise InvalidParameterError(
        f"unknown engine {engine!r}; choose from {ENGINE_NAMES}")


def run(protocol, initial_counts: Mapping[State, int], *,
        engine: str | Engine = "auto", graph=None, rng=None, seed=None,
        max_steps: int | None = None, max_parallel_time: float | None = None,
        expected: int | None = None, recorder=None, event_observer=None,
        on_timeout: str = "return",
        batch_fraction: float = 0.05) -> RunResult:
    """Simulate one execution from an explicit initial configuration."""
    if seed is not None and rng is not None:
        raise InvalidParameterError("give seed or rng, not both")
    generator = ensure_rng(seed if rng is None else rng)
    chosen = make_engine(protocol, engine, graph=graph,
                         batch_fraction=batch_fraction)
    return chosen.run(initial_counts, rng=generator, max_steps=max_steps,
                      max_parallel_time=max_parallel_time,
                      expected=expected, recorder=recorder,
                      event_observer=event_observer,
                      on_timeout=on_timeout)


def run_majority(protocol: MajorityProtocol, *, n: int | None = None,
                 epsilon: float | None = None, count_a: int | None = None,
                 count_b: int | None = None, majority: str = "A",
                 engine: str | Engine = "auto", graph=None,
                 rng=None, seed=None,
                 max_steps: int | None = None,
                 max_parallel_time: float | None = None,
                 recorder=None, event_observer=None,
                 on_timeout: str = "return",
                 batch_fraction: float = 0.05) -> RunResult:
    """Simulate one majority computation and record correctness.

    Specify the input either as ``(n, epsilon, majority)`` — a
    population of ``n`` agents with relative advantage ``epsilon`` for
    the given side — or as explicit ``(count_a, count_b)``.
    """
    if not isinstance(protocol, MajorityProtocol):
        raise InvalidParameterError(
            f"{protocol!r} is not a majority protocol")
    by_margin = n is not None or epsilon is not None
    by_counts = count_a is not None or count_b is not None
    if by_margin == by_counts:
        raise InvalidParameterError(
            "give (n, epsilon) or (count_a, count_b), exactly one of them")
    if by_margin:
        if n is None or epsilon is None:
            raise InvalidParameterError("both n and epsilon are required")
        initial = protocol.initial_counts_for_margin(n, epsilon, majority)
        expected = MAJORITY_A if majority == "A" else MAJORITY_B
    else:
        if count_a is None or count_b is None:
            raise InvalidParameterError(
                "both count_a and count_b are required")
        initial = protocol.initial_counts(count_a, count_b)
        if count_a > count_b:
            expected = MAJORITY_A
        elif count_b > count_a:
            expected = MAJORITY_B
        else:
            expected = None  # a tie has no correct output
    return run(protocol, initial, engine=engine, graph=graph, rng=rng,
               seed=seed, max_steps=max_steps,
               max_parallel_time=max_parallel_time, expected=expected,
               recorder=recorder, event_observer=event_observer,
               on_timeout=on_timeout, batch_fraction=batch_fraction)


def run_trials(protocol: MajorityProtocol, *, num_trials: int,
               rng=None, seed=None, stats: bool = False,
               **run_kwargs) -> list[RunResult] | TrialStats:
    """Repeat :func:`run_majority` with independent random streams.

    Every trial receives a child generator spawned from the root seed,
    so batches are reproducible and trials statistically independent.
    With ``stats=True`` the aggregated :class:`TrialStats` is returned
    instead of the raw result list.
    """
    if num_trials < 1:
        raise InvalidParameterError(
            f"num_trials must be >= 1, got {num_trials}")
    if seed is not None and rng is not None:
        raise InvalidParameterError("give seed or rng, not both")
    root = ensure_rng(seed if rng is None else rng)
    results = [run_majority(protocol, rng=child, **run_kwargs)
               for child in spawn(root, num_trials)]
    if stats:
        return TrialStats.from_results(results)
    return results
