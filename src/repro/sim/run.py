"""High-level run API: one call from protocol to result.

This is the front door most users want::

    from repro import AVCProtocol, run_majority

    protocol = AVCProtocol.with_num_states(64)
    result = run_majority(protocol, n=10_001, epsilon=1 / 10_001, seed=7)

``engine="auto"`` picks the fastest *exact* engine for the protocol:
null-skipping for small state spaces, the count engine otherwise, and
the agent engine whenever an interaction graph is supplied.  When
:func:`run_trials` fans out several trials of a unanimity-settling
protocol with a mid-sized state space, auto upgrades to the vectorized
:class:`~repro.sim.ensemble_engine.EnsembleEngine`, which advances the
whole batch at once (exact per-trial chain, one shared generator).
The approximate batch engine is never chosen implicitly.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..errors import ConvergenceTimeout, InvalidParameterError
from ..protocols.base import MAJORITY_A, MAJORITY_B, MajorityProtocol, State
from ..rng import ensure_rng, spawn
from .agent_engine import AgentEngine
from .batch_engine import BatchEngine
from .count_engine import CountEngine
from .engine import Engine
from .ensemble_engine import EnsembleEngine
from .gillespie import ContinuousTimeEngine, NullSkippingEngine
from .results import RunResult, TrialStats

__all__ = ["make_engine", "run", "run_majority", "run_trials",
           "ENGINE_NAMES", "ENSEMBLE_CHUNK_TRIALS", "ensemble_chunks",
           "ensemble_engine_for_trials", "ensemble_trial_plan"]

#: Engines selectable by name in the high-level API.
ENGINE_NAMES = ("auto", "agent", "count", "null-skipping",
                "continuous-time", "batch", "ensemble")

#: State-count threshold below which null skipping beats the count
#: engine (each productive event scans all ordered state pairs).
_NULL_SKIP_MAX_STATES = 16

#: Largest state space for which the ensemble engine's dense
#: transition table may be materialized (mirrors the guard in
#: :meth:`~repro.protocols.base.PopulationProtocol.transition_matrix`).
_ENSEMBLE_MAX_STATES = 4096

#: Sub-ensemble width for :func:`run_trials` trial fan-out.  The
#: partition depends only on the trial count, so the sequential and
#: parallel runners spawn identical per-chunk generators and return
#: bit-identical results.  Wider chunks amortize the fixed per-tick
#: numpy dispatch cost over more trials; 128 is past the knee of the
#: throughput curve while still splitting paper-scale trial counts
#: into several parallelizable pieces.  The runstore orchestrator
#: checkpoints at exactly these boundaries, so resumed sweeps replay
#: the same chunk plan and stay bit-identical to uninterrupted ones.
ENSEMBLE_CHUNK_TRIALS = 128

#: ``run_trials`` keyword arguments the ensemble fan-out understands.
_ENSEMBLE_TRIAL_KWARGS = frozenset({
    "n", "epsilon", "count_a", "count_b", "majority",
    "max_steps", "max_parallel_time", "on_timeout",
    "batch_fraction", "graph", "recorder", "event_observer",
})


def make_engine(protocol, engine: str | Engine = "auto", *,
                graph=None, batch_fraction: float = 0.05,
                num_trials: int = 1) -> Engine:
    """Instantiate the requested engine for ``protocol``.

    ``engine`` may also be an :class:`~repro.sim.engine.Engine`
    instance, which is passed through (``graph`` must then be absent).
    ``num_trials`` is a hint for ``engine="auto"``: when more than one
    trial will be run, unanimity-settling protocols with mid-sized
    state spaces get the vectorized ensemble engine.
    """
    if isinstance(engine, Engine):
        if graph is not None:
            raise InvalidParameterError(
                "pass the graph to the engine constructor, not to run()")
        return engine
    if engine == "auto":
        if graph is not None:
            engine = "agent"
        elif protocol.num_states <= _NULL_SKIP_MAX_STATES:
            engine = "null-skipping"
        elif (num_trials > 1
              and getattr(protocol, "unanimity_settles", False)
              and protocol.num_states <= _ENSEMBLE_MAX_STATES):
            engine = "ensemble"
        else:
            engine = "count"
    if graph is not None and engine != "agent":
        raise InvalidParameterError(
            f"engine {engine!r} only supports the complete graph; "
            "use engine='agent' for custom interaction graphs")
    if engine == "agent":
        return AgentEngine(protocol, graph=graph)
    if engine == "count":
        return CountEngine(protocol)
    if engine == "null-skipping":
        return NullSkippingEngine(protocol)
    if engine == "continuous-time":
        return ContinuousTimeEngine(protocol)
    if engine == "batch":
        return BatchEngine(protocol, batch_fraction=batch_fraction)
    if engine == "ensemble":
        return EnsembleEngine(protocol)
    raise InvalidParameterError(
        f"unknown engine {engine!r}; choose from {ENGINE_NAMES}")


def run(protocol, initial_counts: Mapping[State, int], *,
        engine: str | Engine = "auto", graph=None, rng=None, seed=None,
        max_steps: int | None = None, max_parallel_time: float | None = None,
        expected: int | None = None, recorder=None, event_observer=None,
        on_timeout: str = "return",
        batch_fraction: float = 0.05) -> RunResult:
    """Simulate one execution from an explicit initial configuration."""
    if seed is not None and rng is not None:
        raise InvalidParameterError("give seed or rng, not both")
    generator = ensure_rng(seed if rng is None else rng)
    chosen = make_engine(protocol, engine, graph=graph,
                         batch_fraction=batch_fraction)
    return chosen.run(initial_counts, rng=generator, max_steps=max_steps,
                      max_parallel_time=max_parallel_time,
                      expected=expected, recorder=recorder,
                      event_observer=event_observer,
                      on_timeout=on_timeout)


def run_majority(protocol: MajorityProtocol, *, n: int | None = None,
                 epsilon: float | None = None, count_a: int | None = None,
                 count_b: int | None = None, majority: str = "A",
                 engine: str | Engine = "auto", graph=None,
                 rng=None, seed=None,
                 max_steps: int | None = None,
                 max_parallel_time: float | None = None,
                 recorder=None, event_observer=None,
                 on_timeout: str = "return",
                 batch_fraction: float = 0.05) -> RunResult:
    """Simulate one majority computation and record correctness.

    Specify the input either as ``(n, epsilon, majority)`` — a
    population of ``n`` agents with relative advantage ``epsilon`` for
    the given side — or as explicit ``(count_a, count_b)``.
    """
    initial, expected = _majority_initial(
        protocol, n=n, epsilon=epsilon, count_a=count_a, count_b=count_b,
        majority=majority)
    return run(protocol, initial, engine=engine, graph=graph, rng=rng,
               seed=seed, max_steps=max_steps,
               max_parallel_time=max_parallel_time, expected=expected,
               recorder=recorder, event_observer=event_observer,
               on_timeout=on_timeout, batch_fraction=batch_fraction)


def _majority_initial(protocol, *, n=None, epsilon=None, count_a=None,
                      count_b=None, majority="A"):
    """Validate a majority-input spec; return ``(initial, expected)``."""
    if not isinstance(protocol, MajorityProtocol):
        raise InvalidParameterError(
            f"{protocol!r} is not a majority protocol")
    by_margin = n is not None or epsilon is not None
    by_counts = count_a is not None or count_b is not None
    if by_margin == by_counts:
        raise InvalidParameterError(
            "give (n, epsilon) or (count_a, count_b), exactly one of them")
    if by_margin:
        if n is None or epsilon is None:
            raise InvalidParameterError("both n and epsilon are required")
        initial = protocol.initial_counts_for_margin(n, epsilon, majority)
        expected = MAJORITY_A if majority == "A" else MAJORITY_B
    else:
        if count_a is None or count_b is None:
            raise InvalidParameterError(
                "both count_a and count_b are required")
        initial = protocol.initial_counts(count_a, count_b)
        if count_a > count_b:
            expected = MAJORITY_A
        elif count_b > count_a:
            expected = MAJORITY_B
        else:
            expected = None  # a tie has no correct output
    return initial, expected


def ensemble_chunks(num_trials: int) -> list[int]:
    """Partition a trial batch into fixed-width sub-ensembles.

    The partition depends only on ``num_trials`` — never on process
    counts or how often a sweep was interrupted — so
    :func:`run_trials`, :func:`~repro.sim.parallel.run_trials_parallel`,
    and the checkpointing :class:`~repro.runstore.orchestrator.Orchestrator`
    all derive identical per-chunk generators and return bit-identical
    results.
    """
    full, rest = divmod(num_trials, ENSEMBLE_CHUNK_TRIALS)
    return [ENSEMBLE_CHUNK_TRIALS] * full + ([rest] if rest else [])


def ensemble_engine_for_trials(protocol, engine, num_trials: int,
                               run_kwargs) -> EnsembleEngine | None:
    """Decide whether a trial batch should fan out through the
    ensemble engine; return the engine to use, or ``None``.

    Explicitly requested ensembles reject unsupported arguments;
    ``engine="auto"`` silently falls back to the per-trial path when
    the batch is too small, the protocol cannot use the vectorized
    convergence counters, the state space is outside the dense-table
    range, or per-interaction instrumentation was requested.
    """
    explicit = engine == "ensemble" or isinstance(engine, EnsembleEngine)
    blockers = [key for key in ("graph", "recorder", "event_observer")
                if run_kwargs.get(key) is not None]
    if explicit:
        if blockers:
            raise InvalidParameterError(
                "engine='ensemble' advances all trials in bulk and does "
                f"not support {', '.join(blockers)}; use a sequential "
                "engine for per-run instrumentation")
        return (engine if isinstance(engine, EnsembleEngine)
                else EnsembleEngine(protocol))
    if engine != "auto" or num_trials < 2 or blockers:
        return None
    if not getattr(protocol, "unanimity_settles", False):
        return None
    if set(run_kwargs) - _ENSEMBLE_TRIAL_KWARGS:
        return None
    s = protocol.num_states
    if s <= _NULL_SKIP_MAX_STATES or s > _ENSEMBLE_MAX_STATES:
        return None
    return EnsembleEngine(protocol)


def _run_trials_ensemble(engine: EnsembleEngine, protocol, num_trials: int,
                         root, run_kwargs) -> list[RunResult]:
    """Sequential trial fan-out through :meth:`run_ensemble`."""
    initial, expected, sim_kwargs, on_timeout = ensemble_trial_plan(
        protocol, run_kwargs)
    sizes = ensemble_chunks(num_trials)
    results: list[RunResult] = []
    for size, child in zip(sizes, spawn(root, len(sizes))):
        results.extend(engine.run_ensemble(
            initial, num_trials=size, rng=child, expected=expected,
            **sim_kwargs))
    if on_timeout == "raise":
        raise_unsettled(results)
    return results


def ensemble_trial_plan(protocol, run_kwargs):
    """Split ``run_trials`` kwargs into ensemble inputs.

    Returns ``(initial, expected, sim_kwargs, on_timeout)`` where
    ``sim_kwargs`` are the budget arguments for ``run_ensemble``.
    """
    unknown = set(run_kwargs) - _ENSEMBLE_TRIAL_KWARGS
    if unknown:
        raise InvalidParameterError(
            f"unsupported arguments for the ensemble trial path: "
            f"{sorted(unknown)}")
    on_timeout = run_kwargs.get("on_timeout", "return")
    if on_timeout not in ("return", "raise"):
        raise InvalidParameterError(
            f"on_timeout must be 'return' or 'raise', got {on_timeout!r}")
    initial, expected = _majority_initial(
        protocol,
        n=run_kwargs.get("n"), epsilon=run_kwargs.get("epsilon"),
        count_a=run_kwargs.get("count_a"),
        count_b=run_kwargs.get("count_b"),
        majority=run_kwargs.get("majority", "A"))
    sim_kwargs = {"max_steps": run_kwargs.get("max_steps"),
                  "max_parallel_time": run_kwargs.get("max_parallel_time")}
    return initial, expected, sim_kwargs, on_timeout


def raise_unsettled(results) -> None:
    """Raise :class:`ConvergenceTimeout` for the first timed-out run."""
    for result in results:
        if not result.settled and not result.frozen:
            raise ConvergenceTimeout(
                f"{result.protocol_name} did not settle within "
                f"{result.steps} interactions (n={result.n})",
                result=result)


def run_trials(protocol: MajorityProtocol, *, num_trials: int,
               rng=None, seed=None, stats: bool = False,
               engine: str | Engine = "auto",
               **run_kwargs) -> list[RunResult] | TrialStats:
    """Repeat :func:`run_majority` with independent random streams.

    With a sequential engine every trial receives a child generator
    spawned from the root seed, so batches are reproducible and trials
    statistically independent.  With ``engine="ensemble"`` (chosen
    automatically for unanimity-settling protocols with more than
    :data:`_NULL_SKIP_MAX_STATES` states when ``num_trials > 1``) the
    batch is advanced in vectorized sub-ensembles of
    :data:`ENSEMBLE_CHUNK_TRIALS` trials, each seeded from its own
    spawned child — several times faster and still exact, though the
    per-trial random streams differ from the sequential engines'.
    With ``stats=True`` the aggregated :class:`TrialStats` is returned
    instead of the raw result list.
    """
    if num_trials < 1:
        raise InvalidParameterError(
            f"num_trials must be >= 1, got {num_trials}")
    if seed is not None and rng is not None:
        raise InvalidParameterError("give seed or rng, not both")
    root = ensure_rng(seed if rng is None else rng)
    ensemble = ensemble_engine_for_trials(protocol, engine, num_trials,
                                          run_kwargs)
    if ensemble is not None:
        results = _run_trials_ensemble(ensemble, protocol, num_trials,
                                       root, run_kwargs)
    else:
        results = [run_majority(protocol, rng=child, engine=engine,
                                **run_kwargs)
                   for child in spawn(root, num_trials)]
    if stats:
        return TrialStats.from_results(results)
    return results
