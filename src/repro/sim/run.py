"""High-level run API: one door from protocol to results.

The front door is a :class:`RunSpec` — a frozen, fingerprintable
description of a simulation batch — handed to :func:`simulate`::

    from repro import AVCProtocol, RunSpec, simulate

    protocol = AVCProtocol.with_num_states(64)
    spec = RunSpec(protocol, n=10_001, epsilon=1 / 10_001,
                   num_trials=100, seed=7)
    results = simulate(spec)

``engine="auto"`` picks the fastest *exact* engine for the protocol
via the :mod:`repro.sim.engines` registry: null-skipping for small
state spaces, the count engine otherwise, and the agent engine
whenever an interaction graph is supplied.  When a spec fans out
several trials of a unanimity-settling protocol with a mid-sized
state space, auto upgrades to a vectorized ensemble engine that
advances the whole batch at once (exact per-trial chain, one shared
generator): the token-matrix
:class:`~repro.sim.ensemble_engine.EnsembleEngine` for small
populations, the ``O(T*s)``-memory
:class:`~repro.sim.count_ensemble_engine.CountEnsembleEngine` from
``n >= COUNT_ENSEMBLE_MIN_N`` up.  Wherever auto lands on a count
engine it upgrades to the compiled twin (``count-jit`` /
``count-ensemble-jit``, see :mod:`repro.sim.kernels`) when a kernel
backend is usable — the twins draw identical RNG streams, so the
upgrade never moves a result.  The approximate batch engine is never chosen
implicitly.  When auto *would* have taken the ensemble fast path but
declines (per-run instrumentation requested, protocol cannot use the
vectorized convergence counters, state space too large), the fallback
is no longer silent: an ``engine.fallback`` telemetry event records
the reason.

:func:`run`, :func:`run_majority`, and :func:`run_trials` remain as
thin wrappers.  Each accepts a :class:`RunSpec` as its only
positional argument; the historical keyword forms still work but emit
:class:`DeprecationWarning` (CI runs the suite with
``-W error::DeprecationWarning``, so in-repo code must use specs).
"""

from __future__ import annotations

import warnings
from collections.abc import Mapping
from dataclasses import dataclass, field, fields, replace
from functools import cached_property
from typing import Any

from ..errors import ConvergenceTimeout, InvalidParameterError
from ..faults import active_faults
from ..protocols.base import MAJORITY_A, MAJORITY_B, MajorityProtocol, State
from ..rng import ensure_rng, spawn
from ..telemetry.context import current as current_telemetry
from ..telemetry.context import use as use_telemetry
from . import engines as engine_registry
from .count_ensemble_engine import CountEnsembleEngine
from .engine import Engine
from .engines import (
    COUNT_ENSEMBLE_MIN_N,
    ENSEMBLE_MAX_STATES,
    NULL_SKIP_MAX_STATES,
)
from .ensemble_engine import EnsembleEngine
from .results import RunResult, TrialStats

__all__ = ["RunSpec", "simulate", "make_engine", "make_run_engine",
           "run", "run_majority", "run_trials", "resolve_trial_engine",
           "ENGINE_NAMES", "ENSEMBLE_CHUNK_TRIALS", "ensemble_chunks",
           "raise_unsettled"]

#: Engines selectable by name in the high-level API (a snapshot of the
#: registry at import time; see :func:`repro.sim.engines.available`).
ENGINE_NAMES = engine_registry.available()

#: Sub-ensemble width for multi-trial fan-out.  The partition depends
#: only on the trial count, so the sequential and parallel runners
#: spawn identical per-chunk generators and return bit-identical
#: results.  Wider chunks amortize the fixed per-tick numpy dispatch
#: cost over more trials; 128 is past the knee of the throughput curve
#: while still splitting paper-scale trial counts into several
#: parallelizable pieces.  The runstore orchestrator checkpoints at
#: exactly these boundaries, so resumed sweeps replay the same chunk
#: plan and stay bit-identical to uninterrupted ones.
ENSEMBLE_CHUNK_TRIALS = 128


@dataclass(frozen=True)
class RunSpec:
    """Everything that defines a simulation batch, in one frozen value.

    Exactly one input form must be given:

    * ``initial`` — an explicit state-count mapping (any protocol);
      ``expected`` may name the output the run should be scored
      against;
    * ``n`` + ``epsilon`` (+ ``majority``) — a majority input by
      population size and relative advantage;
    * ``count_a`` + ``count_b`` — a majority input by explicit counts.

    For the majority forms ``expected`` is derived (``None`` for a
    tie) and the protocol must be a :class:`MajorityProtocol`.

    ``seed`` may be an int, a ``numpy`` ``SeedSequence``/``Generator``,
    or ``None`` for OS entropy.  ``telemetry`` optionally scopes a
    :class:`repro.telemetry.Telemetry` instance to the batch; when
    ``None`` the ambient instance (see :mod:`repro.telemetry.context`)
    applies.

    ``faults`` optionally attaches a :class:`repro.FaultSpec` — state
    corruption, churn, interaction faults, or an adversarial scheduler
    (see :mod:`repro.faults`).  A ``None`` or null spec is the clean
    model, bit-identical to pre-fault behaviour and fingerprinted
    identically; an active spec is folded into :meth:`key`.

    The spec is what the runstore fingerprints: see
    :func:`repro.runstore.fingerprint.spec_key`.
    """

    protocol: Any
    initial: Mapping[State, int] | None = None
    n: int | None = None
    epsilon: float | None = None
    count_a: int | None = None
    count_b: int | None = None
    majority: str = "A"
    expected: int | None = None
    num_trials: int = 1
    seed: Any = None
    engine: str | Engine = "auto"
    graph: Any = None
    batch_fraction: float = 0.05
    max_steps: int | None = None
    max_parallel_time: float | None = None
    on_timeout: str = "return"
    recorder: Any = None
    event_observer: Any = None
    faults: Any = None
    telemetry: Any = field(default=None, compare=False)

    def __post_init__(self):
        if isinstance(self.protocol, (str, tuple)):
            # Protocol-by-name: a registry name, or (name, params).
            # Normalized to an instance here so downstream code (and
            # spec.key(), which serializes the instance) never sees the
            # indirection — "avc" and AVCProtocol() address the same
            # cache entries.
            from ..protocols import registry

            if isinstance(self.protocol, str):
                resolved = registry.create(self.protocol)
            else:
                if len(self.protocol) != 2:
                    raise InvalidParameterError(
                        "protocol tuples must be (name, params), got "
                        f"{self.protocol!r}")
                resolved = registry.create(self.protocol[0],
                                           self.protocol[1])
            object.__setattr__(self, "protocol", resolved)
        active = active_faults(self.faults)  # validates the type too
        if (active is not None and active.scheduler is not None
                and self.graph is not None):
            raise InvalidParameterError(
                "adversarial fault schedulers replace the pair sampler "
                "and cannot be combined with an interaction graph")
        if self.num_trials < 1:
            raise InvalidParameterError(
                f"num_trials must be >= 1, got {self.num_trials}")
        if self.on_timeout not in ("return", "raise"):
            raise InvalidParameterError(
                f"on_timeout must be 'return' or 'raise', "
                f"got {self.on_timeout!r}")
        by_initial = self.initial is not None
        by_margin = self.n is not None or self.epsilon is not None
        by_counts = self.count_a is not None or self.count_b is not None
        if by_initial + by_margin + by_counts != 1:
            raise InvalidParameterError(
                "give exactly one input form: initial, (n, epsilon), "
                "or (count_a, count_b)")
        if by_margin and (self.n is None or self.epsilon is None):
            raise InvalidParameterError("both n and epsilon are required")
        if by_counts and (self.count_a is None or self.count_b is None):
            raise InvalidParameterError(
                "both count_a and count_b are required")
        if not by_initial and not isinstance(self.protocol,
                                             MajorityProtocol):
            raise InvalidParameterError(
                f"{self.protocol!r} is not a majority protocol")
        if not by_initial and self.expected is not None:
            raise InvalidParameterError(
                "expected is derived for majority inputs; give it only "
                "with an explicit initial configuration")

    @cached_property
    def _resolved_input(self) -> tuple[dict, int | None]:
        if self.initial is not None:
            initial, expected = dict(self.initial), self.expected
        elif self.n is not None:
            initial = self.protocol.initial_counts_for_margin(
                self.n, self.epsilon, self.majority)
            expected = MAJORITY_A if self.majority == "A" else MAJORITY_B
        else:
            initial = self.protocol.initial_counts(self.count_a,
                                                   self.count_b)
            if self.count_a > self.count_b:
                expected = MAJORITY_A
            elif self.count_b > self.count_a:
                expected = MAJORITY_B
            else:
                expected = None  # a tie has no correct output
        faults = active_faults(self.faults)
        if faults is not None and faults.byzantine_f:
            total = sum(initial.values())
            if faults.byzantine_f >= total:
                raise InvalidParameterError(
                    f"byzantine_f={faults.byzantine_f} must be smaller "
                    f"than the population (n={total}); at least one "
                    "honest agent is required")
        return initial, expected

    def resolve_input(self) -> tuple[dict, int | None]:
        """Validate once; return ``(initial_counts, expected)``.

        The result is cached on the spec, so a multi-trial batch pays
        for input validation once, not once per trial.
        """
        return self._resolved_input

    def replace(self, **changes) -> "RunSpec":
        """A copy of the spec with ``changes`` applied."""
        return replace(self, **changes)

    def key(self) -> dict:
        """The canonical content-address dict for this spec.

        Delegates to :func:`repro.runstore.fingerprint.spec_key`
        (imported lazily — the sim layer never depends on the
        runstore at import time).
        """
        from ..runstore.fingerprint import spec_key
        return spec_key(self)

    def to_json(self) -> dict:
        """The JSON wire form of this spec (plain dict, JSON-safe).

        Delegates to :func:`repro.serialize.spec_to_dict`; the round
        trip through :meth:`from_json` preserves :meth:`key`, so a
        spec shipped over HTTP addresses the same cache entry as one
        built locally.  Specs carrying runtime-only objects (engine
        instances, graphs, recorders, observers, generator seeds)
        cannot be serialized and raise
        :class:`~repro.errors.InvalidParameterError`.
        """
        from ..serialize import spec_to_dict
        return spec_to_dict(self)

    @classmethod
    def from_json(cls, payload) -> "RunSpec":
        """Rebuild a spec from :meth:`to_json` output (dict or string).

        Malformed payloads raise
        :class:`~repro.errors.InvalidParameterError` with a message
        naming the offending field — the simulation service maps these
        1:1 onto HTTP 422 responses.
        """
        import json as _json

        from ..serialize import spec_from_dict
        if isinstance(payload, (str, bytes, bytearray)):
            try:
                payload = _json.loads(payload)
            except ValueError as error:
                raise InvalidParameterError(
                    f"spec is not valid JSON: {error}") from None
        return spec_from_dict(payload)


_SPEC_FIELDS = frozenset(f.name for f in fields(RunSpec))


def make_engine(protocol, engine: str | Engine = "auto", *,
                graph=None, batch_fraction: float = 0.05,
                num_trials: int = 1) -> Engine:
    """Instantiate the requested engine for ``protocol``.

    ``engine`` may be a registered name (see
    :func:`repro.sim.engines.available`) or an
    :class:`~repro.sim.engine.Engine` instance, which is passed
    through (``graph`` must then be absent).  ``num_trials`` is a hint
    for policy engines such as ``"auto"``.
    """
    if isinstance(engine, Engine):
        if graph is not None:
            raise InvalidParameterError(
                "pass the graph to the engine constructor, not to run()")
        return engine
    return engine_registry.create(protocol, engine, graph=graph,
                                  batch_fraction=batch_fraction,
                                  num_trials=num_trials)


def ensemble_chunks(num_trials: int) -> list[int]:
    """Partition a trial batch into fixed-width sub-ensembles.

    The partition depends only on ``num_trials`` — never on process
    counts or how often a sweep was interrupted — so :func:`simulate`,
    :func:`~repro.sim.parallel.run_trials_parallel`, and the
    checkpointing :class:`~repro.runstore.orchestrator.Orchestrator`
    all derive identical per-chunk generators and return bit-identical
    results.
    """
    full, rest = divmod(num_trials, ENSEMBLE_CHUNK_TRIALS)
    return [ENSEMBLE_CHUNK_TRIALS] * full + ([rest] if rest else [])


#: Spec fields that force the per-trial path (the ensemble engine
#: advances all trials in bulk and cannot thread per-run observers).
_ENSEMBLE_BLOCKERS = ("graph", "recorder", "event_observer")


def make_run_engine(spec: RunSpec) -> Engine:
    """Instantiate the engine for ``spec``'s per-trial path.

    Like :func:`make_engine`, but fault-aware: with an active
    ``spec.faults``, ``"auto"`` reroutes to a fault-capable engine (the
    agent engine under an adversarial scheduler or a graph, the count
    engine otherwise — never the analytic null-skipping family, which
    cannot inject), and explicitly requested engines without fault
    support are rejected up front.
    """
    faults = active_faults(spec.faults)
    if faults is None:
        return make_engine(spec.protocol, spec.engine, graph=spec.graph,
                           batch_fraction=spec.batch_fraction,
                           num_trials=1)
    if not isinstance(spec.engine, Engine) and spec.engine == "auto":
        if getattr(spec.protocol, "is_round_based", False):
            # Round-based message-passing protocols run on the rounds
            # engine, which interprets byzantine_f as corrupted servers.
            name = "rounds"
        else:
            name = ("agent" if faults.scheduler is not None
                    or spec.graph is not None else "count")
        return make_engine(spec.protocol, name, graph=spec.graph,
                           batch_fraction=spec.batch_fraction,
                           num_trials=1)
    engine = make_engine(spec.protocol, spec.engine, graph=spec.graph,
                         batch_fraction=spec.batch_fraction, num_trials=1)
    if not engine.supports_faults:
        raise InvalidParameterError(
            f"engine {engine.name!r} does not support fault injection; "
            "use the agent, count, batch, or ensemble engine")
    if (faults.scheduler is not None
            and not engine.supports_fault_scheduler):
        raise InvalidParameterError(
            f"engine {engine.name!r} does not support adversarial fault "
            "schedulers; use engine='agent'")
    if faults.byzantine_f and not engine.supports_byzantine:
        raise InvalidParameterError(
            f"engine {engine.name!r} does not support byzantine "
            "corruption; use the agent, count, or ensemble engine")
    return engine


def resolve_trial_engine(spec: RunSpec) -> tuple[Engine | None,
                                                 str | None]:
    """Decide whether a batch fans out through an ensemble engine.

    Returns ``(engine, fallback_reason)``.  ``engine`` is the engine
    whose :meth:`run_ensemble` advances the batch — the token-matrix
    :class:`EnsembleEngine` or the ``O(T*s)``-memory
    :class:`CountEnsembleEngine` — or ``None`` for the per-trial path.
    ``fallback_reason`` is non-``None`` only when ``engine="auto"``
    was *eligible* for the vectorized path but declined — the caller
    reports it as an ``engine.fallback`` telemetry event so the
    downgrade is observable.

    ``"auto"`` routes by population size: batches at
    ``n >= COUNT_ENSEMBLE_MIN_N`` take the count ensemble (memory
    independent of ``n``), smaller ones the token ensemble.  Both
    sample the count-engine chain exactly, so the routing threshold
    never changes result *distributions* (only streams).  An
    explicitly requested ensemble rejects unsupported arguments
    instead of falling back.
    """
    engine = spec.engine
    if isinstance(engine, Engine):
        explicit = isinstance(engine,
                              (EnsembleEngine, CountEnsembleEngine))
    else:
        explicit = engine in ("ensemble", "count-ensemble",
                              "count-ensemble-jit")
    blockers = [name for name in _ENSEMBLE_BLOCKERS
                if getattr(spec, name) is not None]
    faults = active_faults(spec.faults)
    if explicit:
        name = engine.name if isinstance(engine, Engine) else engine
        if blockers:
            raise InvalidParameterError(
                f"engine={name!r} advances all trials in bulk and does "
                f"not support {', '.join(blockers)}; use a sequential "
                "engine for per-run instrumentation")
        if faults is not None and faults.scheduler is not None:
            raise InvalidParameterError(
                f"engine={name!r} does not support adversarial fault "
                "schedulers; use engine='agent'")
        if isinstance(engine, Engine):
            return engine, None
        # Registry construction for all three names: the dense-table
        # capability guard rejects oversized structured protocols at
        # creation, and an unusable kernel backend falls back to the
        # numpy twin with its telemetry event.
        return engine_registry.create(spec.protocol, engine), None
    if engine != "auto" or spec.num_trials < 2:
        return None, None
    if getattr(spec.protocol, "is_round_based", False):
        # Round-based protocols advance on the rounds engine
        # (per-trial path); no vectorized ensemble exists for them.
        return None, None
    if faults is not None and faults.scheduler is not None:
        # Adversarial schedulers need the agent engine (per-trial path).
        return None, None
    s = spec.protocol.num_states
    if faults is None and s <= NULL_SKIP_MAX_STATES:
        # Null skipping wins outright here — a choice, not a fallback.
        # (It cannot inject faults, so faulted batches skip it.)
        return None, None
    if blockers:
        return None, "per-run instrumentation: " + ", ".join(blockers)
    if not getattr(spec.protocol, "unanimity_settles", False):
        return None, "protocol does not settle by unanimity"
    if s > ENSEMBLE_MAX_STATES:
        return None, (f"state space too large for the dense table "
                      f"({s} > {ENSEMBLE_MAX_STATES})")
    initial, _ = spec.resolve_input()
    if (sum(initial.values()) >= COUNT_ENSEMBLE_MIN_N
            and not (faults is not None and faults.byzantine_f)):
        # Same upgrade the "auto" registry policy applies: the JIT
        # twin when a kernel backend is usable, numpy otherwise
        # (silently -- auto never promised a compiled engine).  The
        # count-ensemble family has no byzantine path, so byzantine
        # batches stay on the token ensemble at every n.
        from .kernels import jit_engine_name
        return engine_registry.create(
            spec.protocol, jit_engine_name("count-ensemble")), None
    return EnsembleEngine(spec.protocol), None


def simulate(spec: RunSpec, *, stats: bool = False
             ) -> list[RunResult] | TrialStats:
    """Run ``spec.num_trials`` independent trials; the one-door core.

    With a sequential engine every trial receives a child generator
    spawned from the root seed, so batches are reproducible and trials
    statistically independent.  With the ensemble engine (explicit, or
    chosen by ``"auto"`` — see :func:`resolve_trial_engine`) the batch
    is advanced in vectorized sub-ensembles of
    :data:`ENSEMBLE_CHUNK_TRIALS` trials, each seeded from its own
    spawned child — several times faster and still exact, though the
    per-trial random streams differ from the sequential engines'.
    With ``stats=True`` the aggregated :class:`TrialStats` is returned
    instead of the raw result list.
    """
    root = ensure_rng(spec.seed)
    with use_telemetry(spec.telemetry) as telemetry:
        ensemble, fallback = resolve_trial_engine(spec)
        if telemetry.enabled:
            if fallback is not None:
                telemetry.event("engine.fallback", requested="auto",
                                reason=fallback,
                                protocol=spec.protocol.name,
                                num_trials=spec.num_trials)
            telemetry.count("sim.trials", spec.num_trials,
                            protocol=spec.protocol.name)
        if ensemble is not None:
            results = _run_trials_ensemble(ensemble, spec, root)
        else:
            results = _run_trials_sequential(spec, root)
    if stats:
        return TrialStats.from_results(results)
    return results


def _run_trials_sequential(spec: RunSpec, root) -> list[RunResult]:
    """Per-trial fan-out: one spawned child generator per trial.

    Input validation and engine construction are hoisted out of the
    trial loop — both are deterministic and rng-free, so hoisting
    preserves bit-identical results while removing per-trial overhead.
    ``num_trials=1`` keeps "auto" from re-picking the ensemble engine
    after :func:`resolve_trial_engine` already declined it.
    """
    initial, expected = spec.resolve_input()
    engine = make_run_engine(spec)
    return [engine.run(initial, rng=child, max_steps=spec.max_steps,
                       max_parallel_time=spec.max_parallel_time,
                       expected=expected, recorder=spec.recorder,
                       event_observer=spec.event_observer,
                       faults=spec.faults,
                       on_timeout=spec.on_timeout)
            for child in spawn(root, spec.num_trials)]


def _run_trials_ensemble(engine: Engine, spec: RunSpec,
                         root) -> list[RunResult]:
    """Trial fan-out through :meth:`run_ensemble`, chunk by chunk."""
    initial, expected = spec.resolve_input()
    sizes = ensemble_chunks(spec.num_trials)
    results: list[RunResult] = []
    for size, child in zip(sizes, spawn(root, len(sizes))):
        results.extend(engine.run_ensemble(
            initial, num_trials=size, rng=child, expected=expected,
            max_steps=spec.max_steps,
            max_parallel_time=spec.max_parallel_time,
            faults=spec.faults))
    if spec.on_timeout == "raise":
        raise_unsettled(results)
    return results


def raise_unsettled(results) -> None:
    """Raise :class:`ConvergenceTimeout` for the first timed-out run."""
    for result in results:
        if not result.settled and not result.frozen:
            raise ConvergenceTimeout(
                f"{result.protocol_name} did not settle within "
                f"{result.steps} interactions (n={result.n})",
                result=result)


def _simulate_single(spec: RunSpec) -> RunResult:
    """``run``/``run_majority`` semantics: one execution on the *root*
    generator (no child spawning), preserving legacy single-run
    streams exactly."""
    initial, expected = spec.resolve_input()
    engine = make_run_engine(spec)
    with use_telemetry(spec.telemetry):
        return engine.run(initial, rng=ensure_rng(spec.seed),
                          max_steps=spec.max_steps,
                          max_parallel_time=spec.max_parallel_time,
                          expected=expected, recorder=spec.recorder,
                          event_observer=spec.event_observer,
                          faults=spec.faults,
                          on_timeout=spec.on_timeout)


def _legacy_spec(caller: str, protocol, *, rng=None, seed=None,
                 **kwargs) -> RunSpec:
    """Build a :class:`RunSpec` from a deprecated keyword call."""
    warnings.warn(
        f"{caller}(protocol, ...) with individual keyword arguments is "
        f"deprecated; build a repro.RunSpec and pass it as the only "
        f"positional argument (see docs/api_tour.md)",
        DeprecationWarning, stacklevel=3)
    if seed is not None and rng is not None:
        raise InvalidParameterError("give seed or rng, not both")
    unknown = set(kwargs) - _SPEC_FIELDS
    if unknown:
        raise TypeError(
            f"{caller}() got unexpected keyword arguments "
            f"{sorted(unknown)}")
    return RunSpec(protocol, seed=seed if rng is None else rng, **kwargs)


def _reject_extras(caller: str, kwargs) -> None:
    if kwargs:
        raise InvalidParameterError(
            f"{caller}(spec) takes no extra keyword arguments; use "
            f"spec.replace(...) to vary a RunSpec")


def _require_single(caller: str, spec: RunSpec) -> None:
    if spec.num_trials != 1:
        raise InvalidParameterError(
            f"{caller}() runs a single execution; use simulate() or "
            f"run_trials() for num_trials={spec.num_trials}")


def run(spec_or_protocol, initial_counts: Mapping[State, int] | None = None,
        **kwargs) -> RunResult:
    """Simulate one execution from an explicit initial configuration.

    Preferred form: ``run(spec)`` with a single-trial :class:`RunSpec`.
    The historical ``run(protocol, initial_counts, ...)`` keyword form
    still works but emits a :class:`DeprecationWarning`.
    """
    if isinstance(spec_or_protocol, RunSpec):
        if initial_counts is not None:
            raise InvalidParameterError(
                "run(spec) already carries the initial configuration")
        _reject_extras("run", kwargs)
        _require_single("run", spec_or_protocol)
        return _simulate_single(spec_or_protocol)
    spec = _legacy_spec("run", spec_or_protocol, initial=initial_counts,
                        **kwargs)
    return _simulate_single(spec)


def run_majority(spec_or_protocol, **kwargs) -> RunResult:
    """Simulate one majority computation and record correctness.

    Preferred form: ``run_majority(spec)`` with a single-trial
    :class:`RunSpec` using a majority input form (``n``/``epsilon`` or
    ``count_a``/``count_b``).  The historical keyword form still works
    but emits a :class:`DeprecationWarning`.
    """
    if isinstance(spec_or_protocol, RunSpec):
        _reject_extras("run_majority", kwargs)
        _require_single("run_majority", spec_or_protocol)
        return _simulate_single(spec_or_protocol)
    spec = _legacy_spec("run_majority", spec_or_protocol, **kwargs)
    return _simulate_single(spec)


def run_trials(spec_or_protocol, *, stats: bool = False, telemetry=None,
               **kwargs) -> list[RunResult] | TrialStats:
    """Repeat a majority run with independent random streams.

    Preferred form: ``run_trials(spec)`` — equivalent to
    :func:`simulate`, kept as the familiar name.  ``telemetry=...``
    overrides the spec's telemetry for this call.  The historical
    ``run_trials(protocol, num_trials=..., ...)`` keyword form still
    works but emits a :class:`DeprecationWarning`.
    """
    if isinstance(spec_or_protocol, RunSpec):
        _reject_extras("run_trials", kwargs)
        spec = spec_or_protocol
        if telemetry is not None:
            spec = spec.replace(telemetry=telemetry)
        return simulate(spec, stats=stats)
    if telemetry is not None:
        kwargs["telemetry"] = telemetry
    spec = _legacy_spec("run_trials", spec_or_protocol, **kwargs)
    return simulate(spec, stats=stats)
