"""Count-ensemble engine: exact ``O(T*s)``-memory vectorized simulation.

The token-matrix :class:`~repro.sim.ensemble_engine.EnsembleEngine`
stores a ``(T, n)`` matrix, so paper-scale sweeps stall around
``n = 10^5`` on memory and bandwidth.  This engine advances the same
``T`` independent trials on the ``(T, s)`` *count* matrix alone —
persistent memory is independent of ``n`` — and batches interactions
with a collision-bounded round that applies ``Theta(sqrt(n))`` exact
interactions per row per round.

**Sampling.**  Each interaction is one uniform draw from
``[0, n(n-1))``; ``a, b = divmod(r, n - 1)`` and ``b += b >= a`` give
the ordered (initiator, responder) *agent positions* — the responder
sampled without replacement from the remaining ``n - 1`` agents.  On
the complete graph agents are exchangeable, so each round fixes the
canonical sorted-token labelling: position ``p`` holds the state whose
cumulative count first exceeds ``p``.  Positions decode to states
through the round-start cumulative sums — the two-stage categorical
draw of the count chain, realized as one merged binary search.

**Collision-bounded batching.**  Within a round, every draw that
touches agents untouched by earlier draws commutes with them: its
decode against the round-start configuration is its decode against the
true current configuration.  A row therefore applies, in bulk, all
interactions up to its first *collision* — the first draw that
re-touches an agent — and the colliding interaction itself is applied
too, with the re-touched agent resolved to its post-transition state
via its previous occurrence.  The number of interactions a row
consumes is a stopping time of its draw sequence (budget caps are
deterministic, and "draw k re-touches an agent" depends only on draws
``<= k``), so discarded draws are independent of the applied prefix
and the next round restarts the chain exactly (strong Markov).  By the
birthday bound a row consumes ``~sqrt(pi*n/8)`` interactions per
round, which also subsumes null-run skipping: null interactions never
end a batch.

Per round, per row: draws are interleaved into ``2w`` position slots;
a single ``np.sort`` of the combined key ``position * W2 + slot``
yields the sorted positions *and* their originating slots (keys are
unique, so stability is free); adjacent equal positions locate each
row's first collision and each slot's previous occurrence; one
``np.searchsorted`` merge of the sorted positions against the
cumulative counts decodes every slot's state; transitions go through
the flat ``s*s`` tables and are applied with masked ``np.bincount``
scatter-adds.  Unanimity is absorbing for ``unanimity_settles``
protocols, so settling inside a batch is detected at the round end and
the exact settling step recovered by replaying that row's (short)
applied sequence — once per trial lifetime.

Transient per-round buffers are ``O(T*sqrt(n))`` (~25 MB at
``T = 100, n = 10^6``); nothing ``(T, n)``-shaped is ever allocated.
Measured ~7x the token ensemble's interactions/s at ``n = 10^5``
(s = 66, T = 100), with the gap growing in ``n``.

Faults (state corruption, churn, interaction faults) compose on the
count representation with the same windowed one-config-change-per-
round loop as the token engine, decoding positions through per-row
cumulative sums; adversarial schedulers require explicit agents and
are rejected with the standard capability error.
"""

from __future__ import annotations

import math
import time
from collections.abc import Mapping

import numpy as np

from ..errors import InvalidParameterError, SimulationError
from ..faults import FaultRuntime, active_faults
from ..protocols.base import State
from ..rng import ensure_rng
from ..telemetry.context import current as current_telemetry
from .count_engine import CountEngine
from .engine import check_budget_sanity
from .ensemble_common import (
    class_tables,
    emit_chunk_telemetry,
    emit_fault_telemetry,
    flat_transition_tables,
)
from .results import RunResult

__all__ = ["CountEnsembleEngine"]

#: Bounds for the adaptive batch window (interactions drawn per row per
#: round).  The cap tracks the birthday bound ``~sqrt(n)`` so transient
#: buffers stay ``O(T*sqrt(n))``.
_MIN_WINDOW = 8
_MAX_WINDOW_CAP = 4096

#: Window bounds for the (non-batched) faulted loop, which advances one
#: configuration change per row per round like the token engine.
_FAULT_MIN_WINDOW = 4
_FAULT_MAX_WINDOW = 256


def _max_window(n: int) -> int:
    return max(64, min(_MAX_WINDOW_CAP, int(3.0 * math.sqrt(n))))


class _RoundScratch:
    """Reused ``(live, W)`` work arrays for the clean window loop.

    One round allocates ~10 arrays of up to ``T * 2w`` elements; over
    the hundreds of rounds of a paper-scale run the allocator traffic
    is measurable.  Rows only shrink (trials retire) and the window is
    bounded by ``_max_window``, so a single growable allocation serves
    every round.  ``view`` returns exact-shape views that keep
    within-row contiguity — all the sort/searchsorted steps need.
    Values written each round fully overwrite the region read, so
    reuse cannot leak state between rounds (bit-identity is pinned by
    the seed-7 baseline tests).
    """

    _ARRAYS = ("pos", "key", "ps", "order", "prev_sorted", "prev_time",
               "states_time")

    def __init__(self):
        self.rows = 0
        self.cap = 0

    def view(self, live: int, W: int):
        if live > self.rows or W > self.cap:
            self.rows = max(live, self.rows)
            self.cap = max(W, self.cap)
            shape = (self.rows, self.cap)
            for name in self._ARRAYS:
                setattr(self, name, np.empty(shape, dtype=np.int64))
            self.dup = np.empty(shape, dtype=bool)
            self.later = np.empty(shape, dtype=np.int64)
            self.slots = np.arange(self.cap, dtype=np.int64)
        return self


class CountEnsembleEngine(CountEngine):
    """Exact vectorized multi-trial simulation on count vectors.

    Entry points mirror :class:`EnsembleEngine`:

    * :meth:`run_ensemble` — the vectorized path: ``T`` trials on a
      ``(T, s)`` count matrix, ``O(T*s)`` persistent memory regardless
      of ``n``.  Requires ``unanimity_settles`` protocols; recorders
      and event observers are not supported.
    * :meth:`run` (inherited from :class:`CountEngine`) — the standard
      single-run API: the Fenwick-tree loop, exact for any protocol.

    ``run_trials(..., engine="count-ensemble")`` routes whole trial
    batches through :meth:`run_ensemble`, and ``engine="auto"`` picks
    this engine over the token ensemble for large populations (see
    :data:`repro.sim.engines.COUNT_ENSEMBLE_MIN_N`).
    """

    name = "count-ensemble"

    # ------------------------------------------------------------------
    # Vectorized ensemble path
    # ------------------------------------------------------------------

    def run_ensemble(self, initial_counts: Mapping[State, int], *,
                     num_trials: int,
                     rng=None,
                     max_steps: int | None = None,
                     max_parallel_time: float | None = None,
                     expected: int | None = None,
                     faults=None) -> list[RunResult]:
        """Simulate ``num_trials`` independent executions at once.

        Every trial starts from ``initial_counts`` and runs until it
        settles or the per-trial interaction budget is exhausted;
        results are returned in trial order.  Each trial's chain is
        exactly the count-engine chain in distribution.
        """
        protocol = self.protocol
        if num_trials < 1:
            raise InvalidParameterError(
                f"num_trials must be >= 1, got {num_trials}")
        if not getattr(protocol, "unanimity_settles", False):
            raise SimulationError(
                f"{protocol.name}: the vectorized ensemble path requires "
                "unanimity_settles protocols; use CountEnsembleEngine.run() "
                "or CountEngine for generic settledness predicates")
        base = protocol.counts_to_vector(initial_counts)
        n = int(base.sum())
        if n < 2:
            raise InvalidParameterError(
                f"population must have at least 2 agents, got {n}")
        budget = self._resolve_budget(n, max_steps, max_parallel_time)
        check_budget_sanity(budget)
        generator = ensure_rng(rng)
        runtime = None
        active = active_faults(faults)
        if active is not None:
            # Adversarial schedulers need the explicit-agents engine;
            # everything else composes on the count matrix below.
            runtime = FaultRuntime.build(active, protocol,
                                         expected=expected,
                                         scheduler_ok=False)
        telemetry = current_telemetry()
        started = time.perf_counter() if telemetry.enabled else 0.0

        state_class, class_matrix = class_tables(protocol)
        base_class = np.bincount(state_class, weights=base,
                                 minlength=3).astype(np.int64)

        def row_result(steps, settled, decision, vector, productive,
                       events=None):
            return RunResult(
                protocol_name=protocol.name,
                engine_name=self.name,
                n=n,
                steps=int(steps),
                settled=settled,
                decision=decision,
                expected=expected,
                final_counts=protocol.vector_to_counts(vector),
                productive_steps=int(productive),
                continuous_time=None,
                frozen=False,
                fault_events=events,
            )

        if ((base_class[0] == 0
                and (base_class[1] == 0) != (base_class[2] == 0))
                and (runtime is None or runtime.hold_until == 0)):
            # Already settled: every trial converges at step 0.  (A
            # fault window that can unsettle the configuration holds
            # the trials in the arena instead — see repro.faults.)
            decision = 1 if base_class[2] > 0 else 0
            result = row_result(0, True, decision, base, 0,
                                runtime.events() if runtime else None)
            results = [result] * num_trials
            if telemetry.enabled:
                emit_chunk_telemetry(self, telemetry,
                                     time.perf_counter() - started, n,
                                     results, 0, 0)
            return results

        if runtime is not None:
            return self._run_ensemble_faulted(
                runtime, base, n, num_trials, budget, generator,
                telemetry, started, row_result, state_class,
                class_matrix)

        return self._run_ensemble_clean(
            base, n, num_trials, budget, generator, telemetry, started,
            row_result, state_class, class_matrix)

    # ------------------------------------------------------------------
    # Clean path: collision-bounded exact batching
    # ------------------------------------------------------------------

    def _run_ensemble_clean(self, base, n, num_trials, budget, generator,
                            telemetry, started, row_result, state_class,
                            class_matrix):
        protocol = self.protocol
        s = protocol.num_states
        table_x, table_y, nonnull, _ = flat_transition_tables(protocol)
        sc_list = state_class.tolist()
        tx_list = table_x.tolist()
        ty_list = table_y.tolist()

        rounds = 0
        drawn = 0
        results: list[RunResult | None] = [None] * num_trials
        counts = np.tile(base, (num_trials, 1))          # (T, s) int64
        trial_ids = np.arange(num_trials)
        productive = np.zeros(num_trials, dtype=np.int64)
        steps_r = np.zeros(num_trials, dtype=np.int64)
        live = num_trials
        counts_flat = counts.reshape(-1)
        span = n * (n - 1)
        w_cap = _max_window(n)
        # Start near the birthday bound E[batch] ~ sqrt(pi*n/8).
        window = int(np.clip(int(0.9 * math.sqrt(n)), _MIN_WINDOW, w_cap))
        tiled_states = np.tile(np.arange(s, dtype=np.int64), num_trials)
        scratch = _RoundScratch()

        while live:
            remaining = budget - steps_r         # >= 1 for every live row
            w = min(window, int(remaining.max()))
            W = 2 * w
            rounds += 1
            drawn += w * live
            sc = scratch.view(live, W)

            # --- draw: w ordered (initiator, responder) positions/row.
            # dtype pinned to int64: span = n(n-1) overflows 32-bit
            # integers past n ~ 2**15.5 on platforms with a 32-bit
            # default integer.
            raw = generator.integers(0, span, size=(live, w),
                                     dtype=np.int64)
            a, b = np.divmod(raw, n - 1)
            b += b >= a                          # without replacement
            pos = sc.pos[:live, :W]
            pos[:, 0::2] = a
            pos[:, 1::2] = b

            # --- combined-key sort: one plain sort yields the sorted
            # positions AND each sorted entry's originating time slot
            # (keys are unique, so no stable argsort is needed).
            W2 = 1 << (W - 1).bit_length()
            lg = W2.bit_length() - 1
            key = sc.key[:live, :W]
            np.left_shift(pos, lg, out=key)
            np.bitwise_or(key, sc.slots[:W], out=key)
            key.sort(axis=1)
            ps = sc.ps[:live, :W]                # sorted positions
            np.right_shift(key, lg, out=ps)
            order = sc.order[:live, :W]          # slot of each entry
            np.bitwise_and(key, W2 - 1, out=order)

            # --- first collision per row: adjacent equal positions;
            # the sort orders equal positions by slot, so the later
            # occurrence of each duplicate pair is order[:, 1:].
            dup = sc.dup[:live, :W - 1]
            np.equal(ps[:, 1:], ps[:, :-1], out=dup)
            later = sc.later[:live, :W - 1]
            later[...] = W
            np.copyto(later, order[:, 1:], where=dup)
            t_star = later.min(axis=1)           # first re-touching slot
            mc = t_star >> 1                     # clean interactions
            nclean = np.minimum(mc, remaining)
            coll = (t_star < W) & (mc < remaining)
            consumed = nclean + coll

            # --- previous occurrence of each slot's position, in time
            # order (needed to resolve the colliding interaction).
            prev_sorted = sc.prev_sorted[:live, :W]
            prev_sorted[:, 0] = -1
            tail = prev_sorted[:, 1:]
            tail[...] = -1
            np.copyto(tail, order[:, :-1], where=dup)
            prev_time = sc.prev_time[:live, :W]
            np.put_along_axis(prev_time, order, prev_sorted, axis=1)

            # --- merge decode: all 2w slot states from the round-start
            # cumulative counts in one global searchsorted.
            cum = counts.cumsum(axis=1)
            row_off = (np.arange(live, dtype=np.int64) * n)[:, None]
            bnd = np.searchsorted((ps + row_off).ravel(),
                                  (cum + row_off).ravel())
            rs = (np.arange(live, dtype=np.int64) * W)[:, None]
            cnt = np.diff(bnd.reshape(live, s), axis=1, prepend=rs)
            states_sorted = np.repeat(tiled_states[:live * s],
                                      cnt.ravel()).reshape(live, W)
            states_time = sc.states_time[:live, :W]
            np.put_along_axis(states_time, order, states_sorted, axis=1)

            i = states_time[:, 0::2]
            j = states_time[:, 1::2]
            pair = i * s + j
            ni = table_x[pair]
            nj = table_y[pair]
            mask = np.arange(w, dtype=np.int64)[None, :] < nclean[:, None]
            changed = nonnull[pair] & mask
            round_prod = changed.sum(axis=1)

            # --- bulk apply of the collision-free prefix: transitions
            # on disjoint agents commute, so masked bincounts (with a
            # dummy overflow bucket) accumulate all deltas at once.
            fb = (np.arange(live, dtype=np.int64) * s)[:, None]
            dump = live * s
            minus = np.bincount(
                np.concatenate([np.where(changed, fb + i, dump).ravel(),
                                np.where(changed, fb + j, dump).ravel()]),
                minlength=dump + 1)[:dump]
            plus = np.bincount(
                np.concatenate([np.where(changed, fb + ni, dump).ravel(),
                                np.where(changed, fb + nj, dump).ravel()]),
                minlength=dump + 1)[:dump]
            counts_before = counts.copy()
            counts_flat += plus
            counts_flat -= minus

            # --- the colliding interaction is applied too (the cut
            # must include it to stay a stopping time): a re-touched
            # slot resolves to the post-state of its previous
            # occurrence's interaction.
            coll_states = None
            rows_c = np.flatnonzero(coll)
            if rows_c.size:
                e = t_star[rows_c] & ~np.int64(1)

                def slot_state(slot):
                    p = prev_time[rows_c, slot]
                    pc = np.maximum(p, 0)
                    post = np.where((pc & 1).astype(bool),
                                    nj[rows_c, pc >> 1],
                                    ni[rows_c, pc >> 1])
                    return np.where(p >= 0, post,
                                    states_time[rows_c, slot])

                ci = slot_state(e)
                cj = slot_state(e + 1)
                cpair = ci * s + cj
                cni = table_x[cpair]
                cnj = table_y[cpair]
                fbc = rows_c * s
                np.subtract.at(counts_flat,
                               np.concatenate([fbc + ci, fbc + cj]), 1)
                np.add.at(counts_flat,
                          np.concatenate([fbc + cni, fbc + cnj]), 1)
                prod_c = (cni != ci) | (cnj != cj)
                round_prod[rows_c] += prod_c
                coll_states = np.full((live, 4), -1, dtype=np.int64)
                coll_states[rows_c, 0] = ci
                coll_states[rows_c, 1] = cj
                coll_states[rows_c, 2] = cni
                coll_states[rows_c, 3] = cnj

            productive += round_prod
            steps_r += consumed

            # --- settling: unanimity is absorbing for
            # unanimity_settles protocols, so a round-end check cannot
            # miss it; the exact settling step and configuration come
            # from replaying that row's short applied sequence (once
            # per trial lifetime).
            cls = counts @ class_matrix
            done = ((cls[:, 0] == 0)
                    & ((cls[:, 1] == 0) != (cls[:, 2] == 0)))
            settled_live = np.zeros(live, dtype=bool)
            for posn in np.flatnonzero(done):
                steps0 = int(steps_r[posn] - consumed[posn])
                prod0 = int(productive[posn] - round_prod[posn])
                c = counts_before[posn].copy()
                c0, c1, c2 = (c @ class_matrix).tolist()
                seq = zip(i[posn, :nclean[posn]].tolist(),
                          j[posn, :nclean[posn]].tolist())
                if coll_states is not None and coll[posn]:
                    seq = list(seq) + [(-1, -1)]
                prods = 0
                step = 0
                settled_at = None
                for oi, oj in seq:
                    step += 1
                    if oi < 0:
                        oi, oj, vni, vnj = coll_states[posn].tolist()
                    else:
                        hot = oi * s + oj
                        vni = tx_list[hot]
                        vnj = ty_list[hot]
                    if vni == oi and vnj == oj:
                        continue
                    prods += 1
                    c[oi] -= 1
                    c[oj] -= 1
                    c[vni] += 1
                    c[vnj] += 1
                    for old in (oi, oj):
                        k = sc_list[old]
                        if k == 0:
                            c0 -= 1
                        elif k == 1:
                            c1 -= 1
                        else:
                            c2 -= 1
                    for new in (vni, vnj):
                        k = sc_list[new]
                        if k == 0:
                            c0 += 1
                        elif k == 1:
                            c1 += 1
                        else:
                            c2 += 1
                    if c0 == 0 and (c1 == 0) != (c2 == 0):
                        settled_at = step
                        break
                if settled_at is None:
                    # Unreachable for absorbing unanimity; fall back to
                    # the round-end verdict rather than crash.
                    settled_at = int(consumed[posn])
                    c = counts[posn]
                    prods = int(round_prod[posn])
                results[trial_ids[posn]] = row_result(
                    steps0 + settled_at, True, 1 if c2 > 0 else 0, c,
                    prod0 + prods)
                settled_live[posn] = True

            exhausted = steps_r >= budget
            retire = settled_live | exhausted
            if retire.any():
                for posn in np.flatnonzero(exhausted & ~settled_live):
                    results[trial_ids[posn]] = row_result(
                        budget, False, None, counts[posn],
                        productive[posn])
                keep = ~retire
                counts = counts[keep]
                trial_ids = trial_ids[keep]
                productive = productive[keep]
                steps_r = steps_r[keep]
                live = len(trial_ids)
                if not live:
                    break
                counts_flat = counts.reshape(-1)
            # Track slightly past the mean consumed batch so most rows
            # reach their collision within the window.
            window = int(np.clip(int(1.3 * consumed.mean()) + 2,
                                 _MIN_WINDOW, w_cap))

        if telemetry.enabled:
            emit_chunk_telemetry(self, telemetry,
                                 time.perf_counter() - started, n,
                                 results, rounds, drawn)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Faulted path: windowed loop on counts
    # ------------------------------------------------------------------

    def _run_ensemble_faulted(self, runtime, base, n, num_trials, budget,
                              generator, telemetry, started, row_result,
                              state_class, class_matrix):
        """Vectorized faulted loop on the count matrix.

        Structure and semantics mirror the token engine's
        ``_run_ensemble_faulted`` — a window's draws are valid exactly
        up to each row's first configuration change (productive
        interaction or injected fault), so one change is applied per
        row per round — but agent positions decode to states through
        per-row cumulative counts instead of a token matrix, and churn
        adjusts the count rows directly.  Fault victims are drawn by
        position from the post-interaction configuration, matching the
        sequential per-tick order (interaction, flip, crash, join).
        """
        protocol = self.protocol
        s = protocol.num_states
        table_x, table_y, nonnull_full, nonnull_ow = \
            flat_transition_tables(protocol)

        flip_p = runtime.flip_prob
        crash_p = runtime.crash_prob
        join_p = runtime.join_prob
        drop_p = runtime.drop_prob
        ow_p = runtime.oneway_prob
        horizon = runtime.horizon
        hold_until = runtime.hold_until
        floor = runtime.floor
        churn = runtime.churn

        rounds = 0
        drawn = 0
        results: list[RunResult | None] = [None] * num_trials
        counts = np.tile(base, (num_trials, 1))
        trial_ids = np.arange(num_trials)
        productive = np.zeros(num_trials, dtype=np.int64)
        steps_r = np.zeros(num_trials, dtype=np.int64)
        n_live = np.full(num_trials, n, dtype=np.int64)
        ev = {kind: np.zeros(num_trials, dtype=np.int64)
              for kind in ("flips", "crashes", "joins", "drops", "oneway")}
        live = num_trials
        counts_flat = counts.reshape(-1)
        window = _FAULT_MIN_WINDOW

        def finish(pos, steps, settled, decision):
            events = {kind: int(ev[kind][pos]) for kind in ev}
            for kind, value in events.items():
                setattr(runtime, kind, getattr(runtime, kind) + value)
            results[trial_ids[pos]] = row_result(
                steps, settled, decision, counts[pos], productive[pos],
                events)

        def decode_rows(rows, position):
            """States of uniform ``position`` draws in ``rows``' current
            configurations (vectorized over the few affected rows)."""
            cum = np.cumsum(counts[rows], axis=1)
            return (cum <= position[:, None]).sum(axis=1)

        while live:
            remaining = budget - steps_r
            if hold_until:
                cap_r = np.where(steps_r < hold_until,
                                 np.minimum(hold_until - steps_r,
                                            remaining),
                                 remaining)
            else:
                cap_r = remaining
            w = min(window, int(cap_r.max()))
            rounds += 1
            drawn += w * live

            if churn:
                span_r = n_live * (n_live - 1)
                raw = (generator.random((w, live))
                       * span_r[None, :]).astype(np.int64)
                np.minimum(raw, span_r[None, :] - 1, out=raw)
                u, v = np.divmod(raw, (n_live - 1)[None, :])
            else:
                raw = generator.integers(0, n * (n - 1), size=(w, live),
                                         dtype=np.int64)
                u, v = np.divmod(raw, n - 1)
            v += v >= u

            # Merge decode of both position draws against the
            # round-start cumulative counts (valid up to each row's
            # first configuration change, like every draw here).  Rows
            # are offset by a shared stride so one global searchsorted
            # covers per-row populations of different sizes.
            cum = counts.cumsum(axis=1)
            stride = int(n_live.max())
            off = np.arange(live, dtype=np.int64) * stride
            cum_flat = (cum + off[:, None]).ravel()
            sub = np.arange(live, dtype=np.int64)[None, :] * s
            i = np.searchsorted(cum_flat, (u + off[None, :]).ravel(),
                                side="right").reshape(w, live) - sub
            j = np.searchsorted(cum_flat, (v + off[None, :]).ravel(),
                                side="right").reshape(w, live) - sub
            pair = i * s + j

            if horizon is None:
                armed = None  # armed forever
            else:
                armed = ((steps_r[None, :] + np.arange(w)[:, None])
                         < horizon)

            def bernoulli(p):
                if p <= 0.0:
                    return None
                mask = generator.random((w, live)) < p
                if armed is not None:
                    mask &= armed
                return mask

            drop_ev = bernoulli(drop_p)
            ow_ev = bernoulli(ow_p)
            if ow_ev is not None and drop_ev is not None:
                ow_ev &= ~drop_ev  # a dropped meeting cannot be one-way
            flip_ev = bernoulli(flip_p)
            crash_ev = bernoulli(crash_p)
            join_ev = bernoulli(join_p)

            inter_change = nonnull_full[pair]
            if ow_ev is not None:
                inter_change = np.where(ow_ev, nonnull_ow[pair],
                                        inter_change)
            if drop_ev is not None:
                inter_change &= ~drop_ev
            config_change = inter_change
            for mask in (flip_ev, crash_ev, join_ev):
                if mask is not None:
                    config_change = config_change | mask

            hit = config_change.any(axis=0)
            first = np.where(hit, np.argmax(config_change, axis=0), w)
            apply_mask = hit & (first < cap_r)
            consumed = np.where(apply_mask, first + 1,
                                np.minimum(w, cap_r))
            steps_pre = steps_r
            steps_r = steps_r + consumed

            if drop_ev is not None or ow_ev is not None:
                prefix = np.arange(w)[:, None] < consumed[None, :]
                if drop_ev is not None:
                    ev["drops"] += (drop_ev & prefix).sum(axis=0)
                if ow_ev is not None:
                    ev["oneway"] += (ow_ev & prefix).sum(axis=0)

            idx = np.flatnonzero(apply_mask)
            if idx.size:
                at = first[idx]
                # 1) the interaction (unless dropped; one-way rows keep
                #    the responder's state)
                old_i = i[at, idx]
                old_j = j[at, idx]
                hot = old_i * s + old_j
                new_i = table_x[hot]
                new_j = table_y[hot]
                if ow_ev is not None:
                    new_j = np.where(ow_ev[at, idx], old_j, new_j)
                dropped_at = (drop_ev[at, idx] if drop_ev is not None
                              else np.zeros(idx.size, dtype=bool))
                prod = (~dropped_at) & ((new_i != old_i)
                                        | (new_j != old_j))
                rows_p = idx[prod]
                if rows_p.size:
                    productive[rows_p] += 1
                    base_flat = rows_p * s
                    np.subtract.at(
                        counts_flat,
                        np.concatenate([base_flat + old_i[prod],
                                        base_flat + old_j[prod]]),
                        1)
                    np.add.at(
                        counts_flat,
                        np.concatenate([base_flat + new_i[prod],
                                        base_flat + new_j[prod]]),
                        1)
                # 2) flips
                if flip_ev is not None:
                    rows_f = idx[flip_ev[at, idx]]
                    if rows_f.size:
                        ev["flips"][rows_f] += 1
                        position = (generator.random(rows_f.size)
                                    * n_live[rows_f]).astype(np.int64)
                        old = decode_rows(rows_f, position)
                        new = runtime.sample_flip_states(generator,
                                                         rows_f.size)
                        moved = new != old
                        rows_m = rows_f[moved]
                        if rows_m.size:
                            np.subtract.at(counts_flat,
                                           rows_m * s + old[moved], 1)
                            np.add.at(counts_flat,
                                      rows_m * s + new[moved], 1)
                # 3) crashes (floor-guarded)
                if crash_ev is not None:
                    rows_k = idx[crash_ev[at, idx]]
                    rows_k = rows_k[n_live[rows_k] > floor]
                    if rows_k.size:
                        ev["crashes"][rows_k] += 1
                        position = (generator.random(rows_k.size)
                                    * n_live[rows_k]).astype(np.int64)
                        old = decode_rows(rows_k, position)
                        n_live[rows_k] -= 1
                        np.subtract.at(counts_flat, rows_k * s + old, 1)
                # 4) joins
                if join_ev is not None:
                    rows_j = idx[join_ev[at, idx]]
                    if rows_j.size:
                        new = runtime.sample_join_states(generator,
                                                         rows_j.size)
                        n_live[rows_j] += 1
                        ev["joins"][rows_j] += 1
                        np.add.at(counts_flat, rows_j * s + new, 1)

            # Settledness: rows that changed, plus rows crossing the
            # hold boundary this round (their settled verdict becomes
            # terminal exactly at hold_until).
            settled_live = np.zeros(live, dtype=bool)
            check = idx
            if hold_until:
                boundary = np.flatnonzero((steps_pre < hold_until)
                                          & (steps_r >= hold_until))
                check = np.union1d(idx, boundary)
            if check.size:
                cls = counts[check] @ class_matrix
                done_sub = ((cls[:, 0] == 0)
                            & ((cls[:, 1] == 0) != (cls[:, 2] == 0))
                            & (steps_r[check] >= hold_until))
                for where in np.flatnonzero(done_sub):
                    pos = check[where]
                    finish(pos, steps_r[pos], True,
                           1 if cls[where, 2] > 0 else 0)
                    settled_live[pos] = True
            exhausted = steps_r >= budget
            retire = settled_live | exhausted
            if retire.any():
                for pos in np.flatnonzero(exhausted & ~settled_live):
                    finish(pos, budget, False, None)
                keep = ~retire
                counts = counts[keep]
                trial_ids = trial_ids[keep]
                productive = productive[keep]
                steps_r = steps_r[keep]
                n_live = n_live[keep]
                for kind in ev:
                    ev[kind] = ev[kind][keep]
                live = len(trial_ids)
                if not live:
                    break
                counts_flat = counts.reshape(-1)
            window = int(np.clip(2.0 * consumed.mean(),
                                 _FAULT_MIN_WINDOW, _FAULT_MAX_WINDOW))

        if telemetry.enabled:
            emit_chunk_telemetry(self, telemetry,
                                 time.perf_counter() - started, n,
                                 results, rounds, drawn)
            emit_fault_telemetry(self, telemetry, results, runtime)
        return results  # type: ignore[return-value]
