"""Telemetry sinks: in-memory (tests), JSONL trace file, human summary.

Every sink implements ``emit(record: dict)`` for the record shape
documented in :mod:`repro.telemetry.metrics`, plus an optional
``close()``.  Sinks never raise on well-formed records; the trace
validator below is the single place that enforces the schema, so the
CI smoke job (``figure3 --scale smoke --trace-file ...`` followed by
``python -m repro.telemetry <file>``) catches schema drift.
"""

from __future__ import annotations

import json
import math
from collections import defaultdict
from pathlib import Path

from .metrics import Histogram

__all__ = [
    "InMemorySink",
    "JsonlTraceSink",
    "SummarySink",
    "TRACE_SCHEMA_VERSION",
    "validate_trace_record",
    "validate_trace_file",
]

#: Version stamp written as the first line of every JSONL trace.
TRACE_SCHEMA_VERSION = 1

_KINDS = frozenset({"counter", "observation", "span", "event"})
_LABEL_TYPES = (str, int, float, bool, type(None))


class InMemorySink:
    """Record everything; query helpers for test assertions."""

    def __init__(self):
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    # -- queries ------------------------------------------------------

    def named(self, name: str, kind: str | None = None) -> list[dict]:
        """All records called ``name`` (optionally of one kind)."""
        return [r for r in self.records
                if r["name"] == name and (kind is None or r["kind"] == kind)]

    def total(self, name: str, **labels) -> float:
        """Sum of counter increments for ``name`` matching ``labels``."""
        return sum(r["value"] for r in self.named(name, "counter")
                   if all(r["labels"].get(k) == v
                          for k, v in labels.items()))

    def values(self, name: str) -> list[float]:
        """Observation samples recorded under ``name``."""
        return [r["value"] for r in self.named(name, "observation")]

    def spans(self, name: str) -> list[dict]:
        return self.named(name, "span")

    def events(self, name: str) -> list[dict]:
        return self.named(name, "event")

    def clear(self) -> None:
        self.records.clear()


class JsonlTraceSink:
    """Append records to a JSONL trace file, one JSON object per line.

    The first line is a header record ``{"kind": "trace-header",
    "schema": TRACE_SCHEMA_VERSION}`` so readers can reject traces
    from a different schema generation.  The file handle is opened
    lazily on the first record and flushed per line — a crashed run
    leaves a readable prefix, mirroring the runstore journal contract.
    """

    def __init__(self, path):
        self.path = Path(path)
        self._handle = None

    def emit(self, record: dict) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "w", encoding="utf-8")
            header = {"kind": "trace-header",
                      "schema": TRACE_SCHEMA_VERSION}
            self._handle.write(json.dumps(header) + "\n")
        self._handle.write(
            json.dumps(record, separators=(",", ":"), default=str) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class SummarySink:
    """Aggregate records into a human-readable end-of-run summary."""

    def __init__(self):
        self.counters: dict[str, float] = defaultdict(float)
        self.observations: dict[str, Histogram] = defaultdict(Histogram)
        self.span_times: dict[str, Histogram] = defaultdict(Histogram)
        self.event_counts: dict[str, int] = defaultdict(int)

    def emit(self, record: dict) -> None:
        kind, name = record["kind"], record["name"]
        if kind == "counter":
            self.counters[name] += record["value"]
        elif kind == "observation":
            self.observations[name].add(record["value"])
        elif kind == "span":
            self.span_times[name].add(record["value"])
        elif kind == "event":
            self.event_counts[name] += 1

    def render(self) -> str:
        """The summary block printed by ``--telemetry`` runs."""
        lines = ["telemetry summary:"]
        for name in sorted(self.counters):
            lines.append(f"  counter  {name} = {self.counters[name]:g}")
        for name in sorted(self.span_times):
            h = self.span_times[name]
            lines.append(
                f"  span     {name}: n={h.count} total={h.total:.3f}s "
                f"mean={h.mean:.4f}s max={h.max:.4f}s")
        for name in sorted(self.observations):
            h = self.observations[name]
            lines.append(
                f"  observe  {name}: n={h.count} mean={h.mean:.4g} "
                f"p50={h.quantile(0.5):.4g} max={h.max:.4g}")
        for name in sorted(self.event_counts):
            lines.append(f"  event    {name} x{self.event_counts[name]}")
        if len(lines) == 1:
            lines.append("  (no records)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Trace validation (the CI smoke contract)
# ----------------------------------------------------------------------

def validate_trace_record(record) -> None:
    """Raise ``ValueError`` unless ``record`` matches the trace schema."""
    if not isinstance(record, dict):
        raise ValueError(f"trace record must be an object, got "
                         f"{type(record).__name__}")
    if record.get("kind") == "trace-header":
        if record.get("schema") != TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"trace schema {record.get('schema')!r} does not match "
                f"current version {TRACE_SCHEMA_VERSION}")
        return
    missing = {"ts", "kind", "name", "value", "labels"} - set(record)
    if missing:
        raise ValueError(f"trace record missing fields {sorted(missing)}")
    if record["kind"] not in _KINDS:
        raise ValueError(f"unknown record kind {record['kind']!r}")
    if not isinstance(record["ts"], (int, float)):
        raise ValueError(f"ts must be numeric, got {record['ts']!r}")
    if not isinstance(record["name"], str) or not record["name"]:
        raise ValueError(f"name must be a non-empty string, "
                         f"got {record['name']!r}")
    value = record["value"]
    if record["kind"] == "event":
        if value is not None:
            raise ValueError("event records carry no value")
    else:
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or (isinstance(value, float) and math.isnan(value)):
            raise ValueError(
                f"{record['kind']} value must be a number, got {value!r}")
    labels = record["labels"]
    if not isinstance(labels, dict):
        raise ValueError(f"labels must be an object, got {labels!r}")
    for key, item in labels.items():
        if not isinstance(key, str):
            raise ValueError(f"label keys must be strings, got {key!r}")
        if not isinstance(item, _LABEL_TYPES):
            raise ValueError(
                f"label {key!r} has non-scalar value {item!r}")


def validate_trace_file(path) -> dict:
    """Validate a JSONL trace; return per-kind record counts.

    Raises ``ValueError`` on the first malformed line, with the line
    number in the message.  An empty file is invalid (a real trace
    always starts with its header).
    """
    counts: dict[str, int] = defaultdict(int)
    seen_header = False
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError as error:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON: {error}") from None
            try:
                validate_trace_record(record)
            except ValueError as error:
                raise ValueError(f"{path}:{lineno}: {error}") from None
            if record.get("kind") == "trace-header":
                if seen_header:
                    raise ValueError(f"{path}:{lineno}: duplicate header")
                seen_header = True
            else:
                counts[record["kind"]] += 1
    if not seen_header:
        raise ValueError(f"{path}: missing trace-header line")
    return dict(counts)
