"""Zero-dependency metrics primitives: counters, observations, spans.

The telemetry layer answers the question the engines' ``RunResult``
alone cannot: *where* did a sweep spend its interactions, rounds, and
wall seconds?  A :class:`Telemetry` instance fans uniformly shaped
records out to pluggable sinks (:mod:`repro.telemetry.sinks`); every
record is a plain dict, so sinks can serialize, aggregate, or ship
them across process boundaries without any schema machinery.

Record shape (the *trace schema*, version
:data:`~repro.telemetry.sinks.TRACE_SCHEMA_VERSION`)::

    {"ts": <float, seconds since epoch>,
     "kind": "counter" | "observation" | "span" | "event",
     "name": <dotted metric name, e.g. "engine.run">,
     "value": <number or None (events carry no value)>,
     "labels": {<str>: <str | int | float | bool | None>, ...}}

* **counter** — a monotonically accumulated quantity (interactions
  executed, cache hits).  ``value`` is the increment.
* **observation** — one sample of a distribution (per-trial parallel
  time); sinks build histograms out of them.
* **span** — a timed region; ``value`` is the duration in seconds.
* **event** — a structured fact with no numeric value (an engine
  fallback, a journal replay); the payload lives in ``labels``.

Overhead contract
-----------------
Telemetry is **off by default** and free when off: every emitting
method checks :attr:`Telemetry.enabled` first, and the ambient
:func:`repro.telemetry.context.current` instance is a shared disabled
singleton unless a caller activated one.  Instrumented hot paths only
ever record *aggregates* — one record per engine run or per ensemble
chunk, never one per interaction — so enabling telemetry perturbs
throughput by well under the 2% budget the acceptance bench allows.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager

__all__ = ["Telemetry", "Histogram", "NULL_TELEMETRY"]

_KINDS = ("counter", "observation", "span", "event")


class Telemetry:
    """Fan records out to sinks; a disabled instance is a no-op.

    Parameters
    ----------
    sinks:
        Iterable of sink objects implementing ``emit(record: dict)``
        (and optionally ``close()``); see :mod:`repro.telemetry.sinks`.
    enabled:
        ``False`` builds a permanently disabled instance whose
        emitting methods return before touching any sink — the
        zero-overhead test in ``tests/telemetry`` asserts exactly
        this.
    """

    __slots__ = ("sinks", "enabled")

    def __init__(self, sinks=(), *, enabled: bool = True):
        self.sinks = tuple(sinks)
        self.enabled = bool(enabled)

    # -- emitters -----------------------------------------------------

    def count(self, name: str, value: float = 1, **labels) -> None:
        """Accumulate ``value`` onto the counter ``name``."""
        if not self.enabled:
            return
        self._emit("counter", name, value, labels)

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one sample of the distribution ``name``."""
        if not self.enabled:
            return
        self._emit("observation", name, value, labels)

    def event(self, name: str, **labels) -> None:
        """Record a structured event; the payload is the labels."""
        if not self.enabled:
            return
        self._emit("event", name, None, labels)

    def record_span(self, name: str, seconds: float, **labels) -> None:
        """Record an already-measured timed region."""
        if not self.enabled:
            return
        self._emit("span", name, seconds, labels)

    @contextmanager
    def span(self, name: str, **labels):
        """Time a ``with`` block and record it as a span."""
        if not self.enabled:
            yield self
            return
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.record_span(name, time.perf_counter() - started,
                             **labels)

    def ingest(self, records) -> None:
        """Replay records emitted elsewhere (e.g. by a pool worker).

        Records pass through verbatim — timestamps and labels are the
        worker's — so a parent process can merge per-worker in-memory
        sinks into its own trace.
        """
        if not self.enabled:
            return
        for record in records:
            for sink in self.sinks:
                sink.emit(record)

    def close(self) -> None:
        """Close every sink that supports closing (flush trace files)."""
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    # -- plumbing -----------------------------------------------------

    def _emit(self, kind: str, name: str, value, labels: dict) -> None:
        record = {"ts": time.time(), "kind": kind, "name": name,
                  "value": value, "labels": labels}
        for sink in self.sinks:
            sink.emit(record)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"<Telemetry {state} sinks={len(self.sinks)}>"


#: The shared permanently disabled instance
#: :func:`repro.telemetry.context.current` hands out when no telemetry
#: is active.  Emitting through it is a single attribute check.
NULL_TELEMETRY = Telemetry((), enabled=False)


class Histogram:
    """A streaming value distribution (exact, retains samples).

    Used by the summary sink to aggregate observations and span
    durations.  Designed for experiment-scale cardinalities (one
    sample per run or chunk, not per interaction), so retaining the
    raw samples for exact quantiles is fine.
    """

    __slots__ = ("_values",)

    def __init__(self, values=()):
        self._values = list(values)

    def add(self, value: float) -> None:
        self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return math.fsum(self._values)

    @property
    def min(self) -> float:
        return min(self._values) if self._values else math.nan

    @property
    def max(self) -> float:
        return max(self._values) if self._values else math.nan

    @property
    def mean(self) -> float:
        if not self._values:
            return math.nan
        return self.total / len(self._values)

    def quantile(self, q: float) -> float:
        """Exact ``q``-quantile (nearest-rank) of the samples."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._values:
            return math.nan
        ordered = sorted(self._values)
        rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]

    def __repr__(self) -> str:
        return (f"<Histogram count={self.count} mean={self.mean:.4g} "
                f"min={self.min:.4g} max={self.max:.4g}>")
