"""Ambient telemetry: one activation instruments the whole pipeline.

Engines, the trial fan-out, and the runstore orchestrator all read the
*current* telemetry through :func:`current` instead of threading an
argument through every call.  By default nothing is active and
:func:`current` returns the shared disabled
:data:`~repro.telemetry.metrics.NULL_TELEMETRY` — one attribute check
on the hot path, nothing else.

Two activation styles:

* :func:`use` — a context manager scoping telemetry to a block
  (``simulate`` wraps each call in it when the :class:`RunSpec`
  carries a telemetry instance);
* :func:`activate` / :func:`deactivate` — explicit push/pop for CLI
  ``main`` lifetimes, where the scope is the whole process.

The stack is thread-local: worker threads see their own activation
state, and pool worker *processes* start with an empty stack (parallel
runners collect per-worker records and merge them explicitly; see
:mod:`repro.sim.parallel`).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from .metrics import NULL_TELEMETRY, Telemetry

__all__ = ["current", "enabled", "use", "activate", "deactivate", "reset"]

_local = threading.local()


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


def current() -> Telemetry:
    """The active telemetry, or the disabled singleton."""
    stack = _stack()
    return stack[-1] if stack else NULL_TELEMETRY


def enabled() -> bool:
    """Whether the active telemetry actually records anything."""
    return current().enabled


def activate(telemetry: Telemetry) -> Telemetry:
    """Push ``telemetry`` as the ambient instance; returns it."""
    _stack().append(telemetry)
    return telemetry


def deactivate(telemetry: Telemetry | None = None) -> None:
    """Pop the ambient telemetry (optionally verifying identity).

    A ``telemetry`` argument guards against unbalanced push/pop in CLI
    teardown paths: popping when the given instance is not on top is a
    programming error worth surfacing.
    """
    stack = _stack()
    if not stack:
        raise RuntimeError("no telemetry is active")
    if telemetry is not None and stack[-1] is not telemetry:
        raise RuntimeError("deactivate() does not match the active "
                           "telemetry instance")
    stack.pop()


def reset() -> None:
    """Clear this thread's activation stack unconditionally.

    For pool-worker initializers: fork-started workers inherit the
    parent's stack (including sinks holding open file handles), which
    must not receive the worker's records.
    """
    _stack().clear()


@contextmanager
def use(telemetry: Telemetry | None):
    """Scope ``telemetry`` to a block; ``None`` leaves the ambient as-is."""
    if telemetry is None:
        yield current()
        return
    activate(telemetry)
    try:
        yield telemetry
    finally:
        deactivate(telemetry)
