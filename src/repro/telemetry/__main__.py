"""``python -m repro.telemetry <trace.jsonl> [...]`` — validate traces.

Exit status 0 when every file matches the trace schema (prints the
per-kind record counts); 1 with the offending line on stderr
otherwise.  The CI smoke job runs this against the trace emitted by
``figure3 --scale smoke --trace-file``.
"""

from __future__ import annotations

import argparse
import sys

from .sinks import TRACE_SCHEMA_VERSION, validate_trace_file


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Validate JSONL telemetry traces against schema "
                    f"v{TRACE_SCHEMA_VERSION}.")
    parser.add_argument("traces", nargs="+", help="trace files to check")
    args = parser.parse_args(argv)
    for path in args.traces:
        try:
            counts = validate_trace_file(path)
        except (OSError, ValueError) as error:
            print(f"INVALID {error}", file=sys.stderr)
            return 1
        total = sum(counts.values())
        detail = ", ".join(f"{kind}={count}"
                           for kind, count in sorted(counts.items()))
        print(f"ok {path}: {total} record(s) ({detail or 'empty'})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
