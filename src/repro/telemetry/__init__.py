"""repro.telemetry — metrics, tracing, and sinks for engines and sweeps.

Quickstart::

    from repro import RunSpec, simulate
    from repro.telemetry import Telemetry, InMemorySink

    sink = InMemorySink()
    spec = RunSpec(protocol, n=10_001, epsilon=1e-2, num_trials=100,
                   seed=7, telemetry=Telemetry([sink]))
    simulate(spec)
    sink.total("engine.interactions")   # total interactions simulated

See :mod:`repro.telemetry.metrics` for the record shape and the
overhead contract, :mod:`repro.telemetry.sinks` for the built-in
sinks and the JSONL trace validator, and ``docs/telemetry.md`` for
the full tour.  ``python -m repro.telemetry <trace.jsonl>`` validates
a trace file against the schema (the CI smoke job does exactly this).
"""

from .context import activate, current, deactivate, enabled, use
from .metrics import Histogram, NULL_TELEMETRY, Telemetry
from .sinks import (
    InMemorySink,
    JsonlTraceSink,
    SummarySink,
    TRACE_SCHEMA_VERSION,
    validate_trace_file,
    validate_trace_record,
)

__all__ = [
    "Telemetry",
    "Histogram",
    "NULL_TELEMETRY",
    "InMemorySink",
    "JsonlTraceSink",
    "SummarySink",
    "TRACE_SCHEMA_VERSION",
    "validate_trace_file",
    "validate_trace_record",
    "current",
    "enabled",
    "use",
    "activate",
    "deactivate",
]
