"""Service-layer benchmarks: cold vs warm requests, coalescing.

Run with ``pytest benchmarks/test_bench_service.py --benchmark-only``.
The same measurement core backs ``python benchmarks/report.py
--service``, which appends the numbers to ``BENCH_service.json``.
"""

import pytest

from service_bench import (
    ServiceUnderTest,
    measure_coalescing,
    spec_with_seed,
)


@pytest.fixture(scope="module")
def sut():
    served = ServiceUnderTest()
    yield served
    served.close()


def test_warm_request_throughput(benchmark, sut):
    """One cached spec, POSTed repeatedly: the content-addressed fast
    path (zero engine work per request)."""
    spec = spec_with_seed(31)
    first = sut.post_run(spec, wait=300)
    assert first["status"] == "done"
    engine_before = sut.engine_runs()

    view = benchmark(lambda: sut.post_run(spec))

    assert view["cached"] is True
    assert sut.engine_runs() == engine_before
    benchmark.extra_info["row"] = {
        "path": "warm", "engine_runs_per_request": 0}


def test_cold_request_latency(benchmark, sut):
    """Distinct specs every round: submit + simulate + commit."""
    seeds = iter(range(1_000_000, 2_000_000))

    def submit_fresh():
        return sut.post_run(spec_with_seed(next(seeds)), wait=300)

    view = benchmark.pedantic(submit_fresh, rounds=10, iterations=1)
    assert view["status"] == "done" and view["cached"] is False


def test_coalescing_64_concurrent(benchmark, sut):
    """64 simultaneous identical submissions -> exactly 1 simulation."""
    seeds = iter(range(5_000_000, 6_000_000))

    def burst():
        return measure_coalescing(sut, 64, seed=next(seeds))

    outcome = benchmark.pedantic(burst, rounds=3, iterations=1)
    assert outcome["simulations_run"] == 1
    assert outcome["coalescing_ratio"] == 64.0
    benchmark.extra_info["row"] = outcome
