"""Benchmarks: engine throughput (abl-engines).

Times one fixed workload per engine so the engine-selection heuristics
in :mod:`repro.sim.run` stay honest.  These use pytest-benchmark's
real timing loop (multiple rounds), unlike the figure-level benches.
"""

import numpy as np
import pytest

from repro import AVCProtocol, FourStateProtocol
from repro.sim import (
    AgentEngine,
    BatchEngine,
    CountEngine,
    CountEnsembleEngine,
    EnsembleEngine,
    NullSkippingEngine,
)


def run_workload(engine, protocol, count_a, count_b, seed):
    result = engine.run(protocol.initial_counts(count_a, count_b), rng=seed)
    assert result.settled
    return result


def run_ensemble_workload(engine, protocol, count_a, count_b, seed,
                          trials, max_steps=None):
    results = engine.run_ensemble(
        protocol.initial_counts(count_a, count_b), num_trials=trials,
        rng=np.random.default_rng(seed), max_steps=max_steps)
    assert len(results) == trials
    return results


@pytest.mark.parametrize("engine_class", [
    AgentEngine, CountEngine, NullSkippingEngine,
], ids=lambda c: c.name)
def test_four_state_engines(benchmark, engine_class):
    """Four-state protocol, n = 2001, margin 5%: exact engines."""
    protocol = FourStateProtocol()
    engine = engine_class(protocol)
    benchmark(run_workload, engine, protocol, 1051, 950, 12)


@pytest.mark.parametrize("engine_class", [
    AgentEngine, CountEngine, BatchEngine,
], ids=lambda c: c.name)
def test_avc_engines(benchmark, engine_class):
    """AVC s=66, n = 2001, margin one agent."""
    protocol = AVCProtocol.with_num_states(66)
    engine = engine_class(protocol)
    benchmark(run_workload, engine, protocol, 1001, 1000, 12)


@pytest.mark.parametrize("engine_class", [
    EnsembleEngine, CountEnsembleEngine,
], ids=lambda c: c.name)
def test_avc_ensemble_engines(benchmark, engine_class):
    """AVC s=66, n = 10^4, margin 101 agents, 20-trial ensembles: the
    two bulk engines on the engine-selection workload's shape."""
    protocol = AVCProtocol.with_num_states(66)
    engine = engine_class(protocol)
    results = benchmark(run_ensemble_workload, engine, protocol,
                        5_051, 4_950, 12, 20)
    assert all(r.settled for r in results)


def test_count_ensemble_at_paper_scale(benchmark):
    """The count ensemble's reason to exist: n = 10^5, where the token
    matrix thrashes memory bandwidth.  Capped per-trial budget (full
    convergence needs ~n log n interactions); throughput per exact
    interaction is what the trajectory tracks."""
    protocol = AVCProtocol.with_num_states(66)
    engine = CountEnsembleEngine(protocol)
    results = benchmark(run_ensemble_workload, engine, protocol,
                        50_051, 49_950, 12, 20, 50_000)
    assert all(r.steps == 50_000 for r in results)


def test_null_skipping_speedup_at_tiny_margin(benchmark):
    """The null-skipping engine's reason to exist: the four-state
    protocol at eps = 1/n, where almost all interactions are null.
    (The agent engine needs ~n times longer on this workload.)"""
    protocol = FourStateProtocol()
    engine = NullSkippingEngine(protocol)
    result = benchmark(run_workload, engine, protocol, 1001, 1000, 12)
    assert result.productive_steps < result.steps / 10
