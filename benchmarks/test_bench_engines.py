"""Benchmarks: engine throughput (abl-engines).

Times one fixed workload per engine so the engine-selection heuristics
in :mod:`repro.sim.run` stay honest.  These use pytest-benchmark's
real timing loop (multiple rounds), unlike the figure-level benches.
"""

import pytest

from repro import AVCProtocol, FourStateProtocol
from repro.sim import (
    AgentEngine,
    BatchEngine,
    CountEngine,
    NullSkippingEngine,
)


def run_workload(engine, protocol, count_a, count_b, seed):
    result = engine.run(protocol.initial_counts(count_a, count_b), rng=seed)
    assert result.settled
    return result


@pytest.mark.parametrize("engine_class", [
    AgentEngine, CountEngine, NullSkippingEngine,
], ids=lambda c: c.name)
def test_four_state_engines(benchmark, engine_class):
    """Four-state protocol, n = 2001, margin 5%: exact engines."""
    protocol = FourStateProtocol()
    engine = engine_class(protocol)
    benchmark(run_workload, engine, protocol, 1051, 950, 12)


@pytest.mark.parametrize("engine_class", [
    AgentEngine, CountEngine, BatchEngine,
], ids=lambda c: c.name)
def test_avc_engines(benchmark, engine_class):
    """AVC s=66, n = 2001, margin one agent."""
    protocol = AVCProtocol.with_num_states(66)
    engine = engine_class(protocol)
    benchmark(run_workload, engine, protocol, 1001, 1000, 12)


def test_null_skipping_speedup_at_tiny_margin(benchmark):
    """The null-skipping engine's reason to exist: the four-state
    protocol at eps = 1/n, where almost all interactions are null.
    (The agent engine needs ~n times longer on this workload.)"""
    protocol = FourStateProtocol()
    engine = NullSkippingEngine(protocol)
    result = benchmark(run_workload, engine, protocol, 1001, 1000, 12)
    assert result.productive_steps < result.steps / 10
