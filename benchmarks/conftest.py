"""Shared fixtures for the benchmark harness.

Benchmarks default to the ``smoke`` scale so that
``pytest benchmarks/ --benchmark-only`` finishes in minutes while
still reproducing every figure's *shape*.  Set ``REPRO_SCALE=default``
or ``REPRO_SCALE=paper`` to run the larger grids (the paper scale
takes hours; see DESIGN.md).

Each figure-level benchmark stores its result rows in
``benchmark.extra_info`` (visible in ``--benchmark-json`` output) and
prints the same table the ``python -m repro`` CLI would.
"""

import os

import pytest

from repro.experiments.config import resolve_scale


@pytest.fixture(scope="session")
def scale():
    return resolve_scale(os.environ.get("REPRO_SCALE", "smoke"))


def attach_rows(benchmark, rows, columns=None):
    """Stash experiment rows in the benchmark report."""
    benchmark.extra_info["rows"] = [
        {key: row[key] for key in (columns or row)} for row in rows
    ]
