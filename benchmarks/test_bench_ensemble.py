"""Benchmark: ensemble vs count vs batch on multi-trial sweep points.

The ensemble engine exists to make ``run_trials`` fast, so these
benches time whole ``run_trials`` calls (the unit the experiment
harness pays for), one (engine, n) combination per test, at
n = 10^3 and n = 10^4.  One-shot pedantic timing, like the
figure-level benches: a sweep point is seconds of work, and the
trial count already averages away run-to-run noise.

``benchmarks/report.py`` runs the same workloads standalone and
appends the measured throughput to ``BENCH_engines.json``, keeping a
perf trajectory across revisions.
"""

import time

import pytest

from repro import AVCProtocol
from repro.sim.run import RunSpec, run_trials

#: The sweep-point workload: AVC with the Figure 4 mid-size state
#: count, margin ~1% (the acceptance workload of the ensemble-engine
#: PR, same as benchmarks/report.py), population n.
NUM_STATES = 66
TRIALS = {1_001: 40, 10_001: 25}


def sweep_point(n, engine, trials):
    results = run_trials(RunSpec(
        AVCProtocol.with_num_states(NUM_STATES),
        num_trials=trials, seed=12, n=n, epsilon=101 / n,
        engine=engine))
    interactions = sum(r.steps for r in results)
    assert all(r.settled for r in results)
    return interactions


@pytest.mark.parametrize("n", sorted(TRIALS))
@pytest.mark.parametrize("engine", ["ensemble", "count", "batch"])
def test_sweep_point_throughput(benchmark, engine, n):
    trials = TRIALS[n]
    interactions = benchmark.pedantic(
        lambda: sweep_point(n, engine, trials), rounds=1, iterations=1)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["trials"] = trials
    benchmark.extra_info["interactions"] = interactions
    benchmark.extra_info["interactions_per_second"] = (
        interactions / benchmark.stats["mean"])


def test_ensemble_beats_count_loop_at_large_n(benchmark):
    """The acceptance bar for the ensemble path: at n = 10^4 it must
    deliver several times the count-engine loop's per-interaction
    throughput (measured ~7x; asserted >= 4x for noise headroom).
    Each engine runs at its natural operating point — the ensemble
    amortizes numpy dispatch across trials, so it gets the full
    100-trial sweep point while the count engine's per-trial cost is
    sampled from a 10-trial slice.  Wall-clock on the full workload
    scales with the same ratio (both paths are throughput-bound)."""
    started = time.perf_counter()
    count_interactions = sweep_point(10_001, "count", 10)
    count_rate = count_interactions / (time.perf_counter() - started)
    ensemble_interactions = benchmark.pedantic(
        lambda: sweep_point(10_001, "ensemble", 100),
        rounds=1, iterations=1)
    ensemble_rate = ensemble_interactions / benchmark.stats["mean"]
    benchmark.extra_info["count_rate"] = count_rate
    benchmark.extra_info["ensemble_rate"] = ensemble_rate
    benchmark.extra_info["speedup"] = ensemble_rate / count_rate
    assert ensemble_rate > 4 * count_rate, (
        f"ensemble {ensemble_rate:.3g}/s vs count {count_rate:.3g}/s")
