"""Benchmark: the d-ablation (abl-d).

Section 6's observation: the graded intermediate levels are needed by
the *analysis* but ``d > 1`` "does not significantly affect the
running time" in experiments.  The assertion allows a factor-2 spread
across the d sweep — flat in the sense of the paper's remark, while
the state count grows from ``m + 3`` to ``m + 2 d_max + 1``.
"""

from conftest import attach_rows

from repro.experiments.ablation_d import ablation_d_rows
from repro.experiments.io import format_table


def test_ablation_d(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: ablation_d_rows(scale), rounds=1, iterations=1)
    attach_rows(benchmark, rows)
    print()
    print(format_table(
        rows,
        columns=("d", "s", "mean_parallel_time", "error_fraction"),
        title=f"d-ablation (scale={scale.name}, m={scale.ablation_d_m})"))

    times = [row["mean_parallel_time"] for row in rows]
    assert max(times) < 2.0 * min(times), (
        "d is expected to be performance-neutral; got "
        f"{dict((r['d'], round(r['mean_parallel_time'], 1)) for r in rows)}")
    assert all(row["error_fraction"] == 0.0 for row in rows)
