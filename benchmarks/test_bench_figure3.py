"""Benchmark: regenerate Figure 3 (both panels).

Panel left — mean parallel convergence time of the 3-state, 4-state
and n-state AVC protocols at margin ``eps = 1/n``; panel right — the
fraction of erroneous runs.  The assertions pin the paper's
qualitative claims at any scale:

* the 4-state protocol is orders of magnitude slower than AVC as ``n``
  grows (its time is ~linear in ``n``);
* the n-state AVC time is comparable to the 3-state protocol
  (poly-logarithmic);
* the 3-state protocol errs with sizable probability at ``eps = 1/n``
  while both exact protocols never err.
"""

from collections import defaultdict

from conftest import attach_rows

from repro.experiments.figure3 import figure3_rows
from repro.experiments.io import format_table


def test_figure3_regeneration(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: figure3_rows(scale), rounds=1, iterations=1)
    attach_rows(benchmark, rows)
    print()
    print(format_table(
        rows,
        columns=("n", "protocol", "mean_parallel_time", "error_fraction"),
        title=f"Figure 3 (scale={scale.name})"))

    by_population = defaultdict(dict)
    for row in rows:
        kind = row["protocol"].split("(")[0]
        by_population[row["n"]][kind] = row

    largest = max(by_population)
    at_largest = by_population[largest]

    # Left panel shape: 4-state slowest by a growing factor; AVC in
    # the same league as 3-state.
    assert at_largest["four-state"]["mean_parallel_time"] > \
        5 * at_largest["avc"]["mean_parallel_time"]
    assert at_largest["avc"]["mean_parallel_time"] < \
        20 * at_largest["three-state"]["mean_parallel_time"]

    # The 4-state protocol's time grows ~linearly in n; AVC's only
    # poly-logarithmically.
    smallest = min(by_population)
    growth_four = (at_largest["four-state"]["mean_parallel_time"]
                   / by_population[smallest]["four-state"]
                   ["mean_parallel_time"])
    growth_avc = (at_largest["avc"]["mean_parallel_time"]
                  / by_population[smallest]["avc"]["mean_parallel_time"])
    assert growth_four > 3 * growth_avc

    # Right panel shape: only the 3-state protocol errs.
    for n, per_protocol in by_population.items():
        assert per_protocol["four-state"]["error_fraction"] == 0.0
        assert per_protocol["avc"]["error_fraction"] == 0.0
        assert per_protocol["three-state"]["error_fraction"] > 0.1
