"""Benchmark: regenerate Figure 4 (both panels).

Left panel — AVC convergence time vs margin ``eps``, one curve per
state count ``s``; right panel — the same points against ``s * eps``.
Assertions pin the claims the figure supports:

* at fixed ``eps``, more states means (weakly) faster convergence;
* at fixed ``s``, time grows as ``eps`` shrinks, roughly like
  ``1/eps`` in the small-``eps`` regime (Theta(1/(s eps)) dominant
  term);
* plotted against ``s * eps`` the curves collapse: points with
  similar ``s * eps`` have similar times across different ``s``.
"""

import math
from collections import defaultdict

from conftest import attach_rows

from repro.analysis.scaling import fit_power_law
from repro.experiments.figure4 import figure4_rows
from repro.experiments.io import format_table


def test_figure4_regeneration(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: figure4_rows(scale), rounds=1, iterations=1)
    attach_rows(benchmark, rows)
    print()
    print(format_table(
        rows,
        columns=("s", "epsilon", "s_times_epsilon",
                 "mean_parallel_time", "error_fraction"),
        title=f"Figure 4 (scale={scale.name})"))

    by_s = defaultdict(list)
    for row in rows:
        assert row["error_fraction"] == 0.0  # AVC is exact everywhere
        by_s[row["s"]].append(row)

    # Left panel: at the smallest margin, larger s is faster.
    smallest_eps = min(row["epsilon"] for row in rows)
    at_smallest = {row["s"]: row["mean_parallel_time"]
                   for row in rows if row["epsilon"] == smallest_eps}
    ordered = [at_smallest[s] for s in sorted(at_smallest)]
    assert ordered[0] > ordered[-1], "more states should be faster"

    # Left panel: within the smallest s, time decreases with eps, and
    # the fitted log-log slope sits near the theoretical -1 (the
    # Theta(1/eps) ramp; log-factor slack in the bounds).
    smallest_s = min(by_s)
    curve = sorted(by_s[smallest_s], key=lambda r: r["epsilon"])
    assert curve[0]["mean_parallel_time"] > curve[-1]["mean_parallel_time"]
    fit = fit_power_law([r["epsilon"] for r in curve],
                        [r["mean_parallel_time"] for r in curve])
    assert -1.4 < fit.exponent < -0.5, fit
    assert fit.r_squared > 0.85

    # Right panel: the s*eps product predicts time across s — compare
    # pairs from different s with close s*eps (within 3x) and require
    # their times within a generous factor.
    points = [(row["s"], row["s_times_epsilon"],
               row["mean_parallel_time"]) for row in rows]
    compared = 0
    for i, (s_a, product_a, time_a) in enumerate(points):
        for s_b, product_b, time_b in points[i + 1:]:
            if s_a == s_b or not product_a or not product_b:
                continue
            if abs(math.log(product_a / product_b)) < math.log(2.0):
                ratio = time_a / time_b
                assert 1 / 8 < ratio < 8, (
                    f"s*eps collapse violated: ({s_a},{product_a:.3g})"
                    f" vs ({s_b},{product_b:.3g}): times {time_a:.1f} vs"
                    f" {time_b:.1f}")
                compared += 1
    assert compared > 0, "grid too sparse to test the collapse"
