"""Benchmarks: the phase-structure and topology experiments."""

from conftest import attach_rows

from repro.experiments.io import format_table
from repro.experiments.phases import phase_rows
from repro.experiments.topology import topology_rows


def test_phase_structure(benchmark, scale):
    """abl-phases: Claim A.2's geometric weight decay, live."""
    rows = benchmark.pedantic(lambda: phase_rows(scale),
                              rounds=1, iterations=1)
    attach_rows(benchmark, rows)
    print()
    print(format_table(rows, title="AVC phase structure (Claim A.2)"))

    # Halvings happen at roughly evenly spaced times: the spread of
    # inter-halving gaps is bounded, instead of growing with weight.
    gaps = [row["time_since_previous"] for row in rows[1:]]
    assert gaps, "need at least two halvings"
    assert max(gaps) < 25 * (min(gaps) + 0.5)
    # The halving phase is a minority of the total run at eps = 1/n
    # (the unit-weight sweep dominates, per Claims 4.5/A.4).
    assert rows[-1]["parallel_time"] \
        < 0.9 * rows[-1]["total_convergence_time"]


def test_topology_sweep(benchmark, scale):
    """abl-topology: spectral gap predicts the topology ordering, and
    AVC's clique-specific termination shows up on the ring."""
    rows = benchmark.pedantic(lambda: topology_rows(scale),
                              rounds=1, iterations=1)
    attach_rows(benchmark, rows)
    print()
    print(format_table(
        rows,
        columns=("topology", "protocol", "spectral_gap",
                 "predicted_time", "mean_parallel_time",
                 "settled_fraction", "error_fraction"),
        title="Topology sweep"))

    interval = {row["topology"]: row for row in rows
                if row["protocol"] == "interval-consensus"}
    assert interval["ring"]["mean_parallel_time"] \
        > interval["clique"]["mean_parallel_time"]
    assert all(row["error_fraction"] in (0.0, row["error_fraction"])
               and not row["error_fraction"] > 0
               for row in rows if row["settled_fraction"] > 0)
    avc_rows = {row["topology"]: row for row in rows
                if row["protocol"].startswith("avc")}
    assert avc_rows["clique"]["settled_fraction"] == 1.0
    assert avc_rows["ring"]["settled_fraction"] < 0.5
