"""Append engine-throughput measurements to BENCH_engines.json.

Usage::

    PYTHONPATH=src python benchmarks/report.py [--label "..."] [--full]

Runs the acceptance workload from the ensemble-engine PR — AVC with
66 states at n = 10^4, margin epsilon = 101/n, 100 trials — once per
engine, and appends one record (interactions/s per engine, wall time,
speedup over the count-engine trial loop) to ``BENCH_engines.json``
at the repo root.  The file is a perf trajectory: every record keeps
its git revision, so future PRs can diff throughput against this one.

By default the count engine runs a 10-trial slice of the workload
(its Python loop needs ~0.8 s/trial here; throughput per interaction
is what the trajectory tracks, and that does not depend on the trial
count).  ``--full`` runs all engines on the complete 100-trial
workload for an apples-to-apples wall-time comparison.

Each engine record carries telemetry-sourced fields alongside wall
seconds: ``interactions`` (cross-checked against the in-memory sink's
``engine.interactions`` counter), ``productive_interactions``, and
``cache_hit_ratio`` (``runstore.cache.hit`` over all lookups — null
here, where the workload drives engines directly, but populated for
any future measurement routed through the runstore orchestrator).
"""

import argparse
import json
import pathlib
import subprocess
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import AVCProtocol  # noqa: E402
from repro.sim.run import ENGINE_NAMES, RunSpec, simulate  # noqa: E402
from repro.telemetry import InMemorySink, Telemetry  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_engines.json"

WORKLOAD = {
    "protocol": "avc",
    "num_states": 66,
    "n": 10_001,
    "epsilon_numerator": 101,
    "trials": 100,
    "seed": 0,
}
#: Trial counts per engine in the default (quick) mode.
QUICK_TRIALS = {"ensemble": 100, "batch": 100, "count": 10}


def measure(engine: str, trials: int) -> dict:
    protocol = AVCProtocol.with_num_states(WORKLOAD["num_states"])
    n = WORKLOAD["n"]
    sink = InMemorySink()
    spec = RunSpec(
        protocol,
        num_trials=trials,
        seed=WORKLOAD["seed"],
        n=n,
        epsilon=WORKLOAD["epsilon_numerator"] / n,
        engine=engine,
        telemetry=Telemetry([sink]),
    )
    started = time.perf_counter()
    results = simulate(spec)
    seconds = time.perf_counter() - started
    interactions = sum(r.steps for r in results)
    counted = int(sink.total("engine.interactions"))
    if counted != interactions:
        raise AssertionError(
            f"telemetry counted {counted} interactions but results "
            f"sum to {interactions}")
    hits = sink.total("runstore.cache.hit")
    lookups = hits + sink.total("runstore.cache.miss")
    return {
        "trials": trials,
        "settled": sum(r.settled for r in results),
        "interactions": interactions,
        "productive_interactions": int(sink.total("engine.productive")),
        "cache_hit_ratio": round(hits / lookups, 3) if lookups else None,
        "seconds": round(seconds, 3),
        "interactions_per_second": round(interactions / seconds, 1),
    }


def git_revision() -> str | None:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, check=True).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default=None,
                        help="free-form tag for this record")
    parser.add_argument("--engines", nargs="+",
                        default=["count", "batch", "ensemble"],
                        help="engines to measure (default: count batch "
                             "ensemble)")
    parser.add_argument("--full", action="store_true",
                        help="run every engine on the full 100-trial "
                             "workload (slow: the count engine takes "
                             "about 80 s)")
    args = parser.parse_args(argv)
    unknown = sorted(set(args.engines) - set(ENGINE_NAMES))
    if unknown:
        parser.error(f"unknown engine(s) {unknown}; "
                     f"choose from {ENGINE_NAMES}")

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "git": git_revision(),
        "label": args.label,
        "engines": {},
    }
    for engine in args.engines:
        trials = (WORKLOAD["trials"] if args.full
                  else QUICK_TRIALS.get(engine, WORKLOAD["trials"]))
        print(f"measuring {engine} ({trials} trials)...", flush=True)
        record["engines"][engine] = measure(engine, trials)
        per_sec = record["engines"][engine]["interactions_per_second"]
        print(f"  {engine}: {per_sec:.3g} interactions/s "
              f"in {record['engines'][engine]['seconds']} s")
    if {"count", "ensemble"} <= record["engines"].keys():
        record["speedup_ensemble_vs_count"] = round(
            record["engines"]["ensemble"]["interactions_per_second"]
            / record["engines"]["count"]["interactions_per_second"], 2)
        print(f"ensemble vs count: "
              f"{record['speedup_ensemble_vs_count']}x per interaction")

    if OUTPUT.exists():
        document = json.loads(OUTPUT.read_text())
    else:
        document = {"workload": WORKLOAD, "history": []}
    document["history"].append(record)
    OUTPUT.write_text(json.dumps(document, indent=2) + "\n")
    print(f"appended record to {OUTPUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
