"""Append engine-throughput measurements to BENCH_engines.json.

Usage::

    PYTHONPATH=src python benchmarks/report.py [--label "..."] [--full]
    PYTHONPATH=src python benchmarks/report.py --scaling
    PYTHONPATH=src python benchmarks/report.py --distributed
    PYTHONPATH=src python benchmarks/report.py --dry-run

Runs the acceptance workload from the ensemble-engine PR — AVC with
66 states at n = 10^4, margin epsilon = 101/n, 100 trials — once per
engine, and appends one record (interactions/s per engine, wall time,
speedup over the count-engine trial loop) to ``BENCH_engines.json``
at the repo root.  The file is a perf trajectory: every record keeps
its git revision, so future PRs can diff throughput against this one.

By default the count engine runs a 10-trial slice of the workload
(its Python loop needs ~0.8 s/trial here; throughput per interaction
is what the trajectory tracks, and that does not depend on the trial
count).  ``--full`` runs all engines on the complete 100-trial
workload for an apples-to-apples wall-time comparison.

``--scaling`` adds the count-ensemble acceptance rows: both ensemble
engines at n = 10^5 under a fixed per-trial interaction cap (the
speedup ratio is the PR's acceptance metric), plus a count-ensemble
row at n = 10^6 — a population where the token ensemble's ``(T, n)``
matrix alone (~400 MB at T = 100) dwarfs the count-ensemble's whole
footprint, so only the count ensemble reports a row there.

``--dry-run`` runs a single small count-ensemble measurement and
discards it — a CI smoke check that the engine imports, runs, and
passes the telemetry/results cross-check (shape regressions), with no
timing assertions and no JSON write.

Each engine record carries telemetry-sourced fields alongside wall
seconds: ``interactions`` (cross-checked against the in-memory sink's
``engine.interactions`` counter), ``productive_interactions``, and
``cache_hit_ratio`` (``runstore.cache.hit`` over all lookups — null
here, where the workload drives engines directly, but populated for
any future measurement routed through the runstore orchestrator).

Every record also carries ``kernels`` metadata — the installed numba
version (or null) and the kernel backend the JIT engine names
resolved to (``numba``/``cext``/null) — so a throughput diff across
records never has to guess which stack produced the JIT rows.
``--engines`` filters both the main matrix and the ``--scaling``
rows; kernel compilation happens outside every timed window.
"""

import argparse
import hashlib
import json
import os
import pathlib
import re
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import AVCProtocol, FaultSpec  # noqa: E402
from repro.sim.run import ENGINE_NAMES, RunSpec, simulate  # noqa: E402
from repro.telemetry import InMemorySink, Telemetry  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_engines.json"
SERVICE_OUTPUT = REPO_ROOT / "BENCH_service.json"
BYZANTINE_OUTPUT = REPO_ROOT / "BENCH_byzantine.json"
SWEEPS_OUTPUT = REPO_ROOT / "BENCH_sweeps.json"

WORKLOAD = {
    "protocol": "avc",
    "num_states": 66,
    "n": 10_001,
    "epsilon_numerator": 101,
    "trials": 100,
    "seed": 0,
}
#: Trial counts per engine in the default (quick) mode.
QUICK_TRIALS = {"ensemble": 100, "count-ensemble": 100,
                "count-ensemble-jit": 100, "batch": 100, "count": 10}

#: The count-ensemble scaling rows (``--scaling``): populations, the
#: per-trial interaction cap (full convergence needs ~n log n
#: interactions — billions at these sizes — so throughput is measured
#: over a fixed exact prefix of every trial), and which engines can
#: field a row at each size.  The token ensemble is absent at 10^6:
#: its (T, n) int32 token matrix alone is ~400 MB at T = 100.  The
#: JIT twin draws the identical stream and returns identical results,
#: so its rows are a pure same-work throughput comparison (it falls
#: back to the numpy engine, and matching numbers, on hosts with no
#: kernel backend — see the record's ``kernels`` metadata).
SCALING_CAP = 200_000
SCALING_ROWS = [
    {"n": 100_001,
     "engines": ("ensemble", "count-ensemble", "count-ensemble-jit")},
    {"n": 1_000_001,
     "engines": ("count-ensemble", "count-ensemble-jit")},
]


def kernels_metadata() -> dict:
    """Which compiled-kernel stack produced this record's JIT rows."""
    from repro.sim import kernels
    try:
        import numba
        numba_version = numba.__version__
    except ImportError:
        numba_version = None
    return {
        "numba_version": numba_version,
        "resolved_backend": kernels.default_backend(),
    }


def measure(engine: str, trials: int, *, n: int | None = None,
            max_steps: int | None = None) -> dict:
    protocol = AVCProtocol.with_num_states(WORKLOAD["num_states"])
    if n is None:
        n = WORKLOAD["n"]
    sink = InMemorySink()
    spec = RunSpec(
        protocol,
        num_trials=trials,
        seed=WORKLOAD["seed"],
        n=n,
        epsilon=WORKLOAD["epsilon_numerator"] / n,
        engine=engine,
        max_steps=max_steps,
        telemetry=Telemetry([sink]),
    )
    # Kernel compilation/load happens outside the timed window (no-op
    # for numpy engines and on hosts with no backend).
    from repro.sim.kernels import warm_up_for_spec
    warm_up_for_spec(spec)
    started = time.perf_counter()
    results = simulate(spec)
    seconds = time.perf_counter() - started
    interactions = sum(r.steps for r in results)
    counted = int(sink.total("engine.interactions"))
    if counted != interactions:
        raise AssertionError(
            f"telemetry counted {counted} interactions but results "
            f"sum to {interactions}")
    hits = sink.total("runstore.cache.hit")
    lookups = hits + sink.total("runstore.cache.miss")
    return {
        "trials": trials,
        "settled": sum(r.settled for r in results),
        "interactions": interactions,
        "productive_interactions": int(sink.total("engine.productive")),
        "cache_hit_ratio": round(hits / lookups, 3) if lookups else None,
        "seconds": round(seconds, 3),
        "interactions_per_second": round(interactions / seconds, 1),
    }


def measure_scaling(engines: list[str] | None = None) -> list:
    """The large-``n`` rows: every trial advances exactly
    ``SCALING_CAP`` interactions (the cap binds long before
    convergence at these populations), so interactions/s is an
    apples-to-apples exact-chain throughput comparison.

    ``engines`` filters each row to the requested engine names (a row
    with no surviving engine is skipped entirely); ``None`` measures
    every engine a row lists.
    """
    trials = WORKLOAD["trials"]
    rows = []
    for spec in SCALING_ROWS:
        n = spec["n"]
        selected = [name for name in spec["engines"]
                    if engines is None or name in engines]
        if not selected:
            continue
        row = {"n": n, "trials": trials, "max_steps": SCALING_CAP,
               "engines": {}}
        if "ensemble" not in spec["engines"]:
            # The token matrix the absent engine would need, for scale.
            row["token_ensemble_matrix_bytes"] = trials * n * 4
        for engine in selected:
            print(f"measuring {engine} at n={n} "
                  f"(cap {SCALING_CAP}/trial)...", flush=True)
            row["engines"][engine] = measure(engine, trials, n=n,
                                             max_steps=SCALING_CAP)
            per_sec = row["engines"][engine]["interactions_per_second"]
            print(f"  {engine}: {per_sec:.3g} interactions/s")
        if {"ensemble", "count-ensemble"} <= row["engines"].keys():
            row["speedup_count_ensemble_vs_ensemble"] = round(
                row["engines"]["count-ensemble"]
                   ["interactions_per_second"]
                / row["engines"]["ensemble"]["interactions_per_second"],
                2)
            print(f"  count-ensemble vs ensemble at n={n}: "
                  f"{row['speedup_count_ensemble_vs_ensemble']}x")
        if {"count-ensemble", "count-ensemble-jit"} <= \
                row["engines"].keys():
            row["speedup_jit_vs_numpy"] = round(
                row["engines"]["count-ensemble-jit"]
                   ["interactions_per_second"]
                / row["engines"]["count-ensemble"]
                     ["interactions_per_second"], 2)
            print(f"  count-ensemble-jit vs count-ensemble at n={n}: "
                  f"{row['speedup_jit_vs_numpy']}x")
        rows.append(row)
    return rows


def git_revision() -> str | None:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, check=True).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return None


def service_report(label: str | None = None) -> int:
    """Append a simulation-service measurement to BENCH_service.json.

    The workload lives in :mod:`service_bench` (shared with the
    pytest-benchmark leg): cold requests (distinct specs, one real
    simulation each), warm requests (one committed spec, pure
    content-addressed cache hits), and a 64-way concurrent burst of
    one uncached spec that must coalesce into exactly one simulation.
    """
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    from service_bench import run_benchmark

    print("measuring simulation service (cold / warm / coalescing)...",
          flush=True)
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "git": git_revision(),
        "label": label,
        **run_benchmark(),
    }
    print(f"  cold: {record['cold']['requests_per_second']} req/s "
          f"(p50 {record['cold']['p50_ms']} ms, "
          f"p95 {record['cold']['p95_ms']} ms)")
    print(f"  warm: {record['warm']['requests_per_second']} req/s "
          f"(p50 {record['warm']['p50_ms']} ms, "
          f"p95 {record['warm']['p95_ms']} ms), "
          f"{record['warm_over_cold_speedup']}x cold")
    coalescing = record["coalescing"]
    print(f"  coalescing: {coalescing['concurrent_requests']} "
          f"concurrent requests -> {coalescing['simulations_run']} "
          f"simulation(s), ratio {coalescing['coalescing_ratio']}")
    if SERVICE_OUTPUT.exists():
        document = json.loads(SERVICE_OUTPUT.read_text())
    else:
        document = {"history": []}
    document["history"].append(record)
    SERVICE_OUTPUT.write_text(json.dumps(document, indent=2) + "\n")
    print(f"appended record to {SERVICE_OUTPUT}")
    return 0


#: The rounds-engine throughput rows (``--byzantine``).  Ben-Or runs
#: in the blocked regime (n = 3f, the adaptive adversary pins every
#: trial to the full round budget) so each trial advances exactly
#: ``rounds`` rounds and rounds/s is a deterministic-work throughput
#: number; epsilon-agreement runs a tight tolerance under the
#: equivocating adversary and reports the rounds it actually takes.
BYZANTINE_ROUNDS_ROWS = [
    {"protocol": "ben-or", "params": {}, "n": 300, "f": 100,
     "mode": "adaptive", "rounds": 300, "trials": 20},
    {"protocol": "epsilon-agreement",
     "params": {"epsilon_agree": 1e-9}, "n": 300, "f": 90,
     "mode": "adaptive", "rounds": 300, "trials": 20},
]
#: The byzantine-injection overhead workload: the standard AVC
#: workload on the count engine, capped so clean and corrupted runs
#: advance the same exact prefix of every trial (the cap binds long
#: before convergence) and the interactions/s ratio isolates the cost
#: of the per-meeting hypergeometric membership draws and message
#: rewrites.
BYZANTINE_OVERHEAD = {"trials": 10, "max_steps": 50_000,
                      "byzantine_f": 100}


def _measure_rounds(row: dict) -> dict:
    sink = InMemorySink()
    spec = RunSpec(
        (row["protocol"], row["params"]),
        n=row["n"],
        epsilon=0.2,
        seed=WORKLOAD["seed"],
        num_trials=row["trials"],
        max_steps=row["rounds"],
        faults=FaultSpec(byzantine_f=row["f"],
                         byzantine_mode=row["mode"]),
        telemetry=Telemetry([sink]),
    )
    started = time.perf_counter()
    results = simulate(spec)
    seconds = time.perf_counter() - started
    rounds = sum(r.steps for r in results)
    counted = int(sink.total("engine.interactions"))
    if counted != rounds:
        raise AssertionError(
            f"telemetry counted {counted} rounds but results sum "
            f"to {rounds}")
    return {
        "n": row["n"],
        "byzantine_f": row["f"],
        "byzantine_mode": row["mode"],
        "trials": row["trials"],
        "settled": sum(r.settled for r in results),
        "rounds": rounds,
        "byzantine_lies": sum(
            r.fault_events["byzantine_lies"] for r in results),
        "seconds": round(seconds, 3),
        "rounds_per_second": round(rounds / seconds, 1),
    }


def byzantine_report(label: str | None = None) -> int:
    """Append a byzantine-machinery measurement to BENCH_byzantine.json.

    Two throughput surfaces: rounds/s for the synchronous
    message-passing engine (Ben-Or pinned at n = 3f plus a tight
    epsilon-agreement run, both under the adaptive adversary), and the
    byzantine-injection overhead on the count engine — the standard
    AVC workload with and without a corruption budget, same
    interaction cap, so the ratio is the per-interaction cost of the
    fault channel.
    """
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "git": git_revision(),
        "label": label,
        "rounds_engine": {},
    }
    for row in BYZANTINE_ROUNDS_ROWS:
        print(f"measuring rounds engine: {row['protocol']} "
              f"(n={row['n']}, f={row['f']}, {row['mode']})...",
              flush=True)
        outcome = _measure_rounds(row)
        record["rounds_engine"][row["protocol"]] = outcome
        print(f"  {row['protocol']}: {outcome['rounds_per_second']:.3g} "
              f"rounds/s over {outcome['rounds']} rounds")

    cap = BYZANTINE_OVERHEAD["max_steps"]
    trials = BYZANTINE_OVERHEAD["trials"]
    f = BYZANTINE_OVERHEAD["byzantine_f"]
    overhead = {"workload": dict(BYZANTINE_OVERHEAD), "engines": {}}
    protocol = AVCProtocol.with_num_states(WORKLOAD["num_states"])
    for name, faults in (("clean", None),
                         ("byzantine", FaultSpec(byzantine_f=f))):
        print(f"measuring count engine ({name}, cap {cap}/trial)...",
              flush=True)
        spec = RunSpec(
            protocol,
            n=WORKLOAD["n"],
            epsilon=WORKLOAD["epsilon_numerator"] / WORKLOAD["n"],
            seed=WORKLOAD["seed"],
            num_trials=trials,
            engine="count",
            max_steps=cap,
            faults=faults,
        )
        started = time.perf_counter()
        results = simulate(spec)
        seconds = time.perf_counter() - started
        interactions = sum(r.steps for r in results)
        overhead["engines"][name] = {
            "trials": trials,
            "interactions": interactions,
            "seconds": round(seconds, 3),
            "interactions_per_second": round(
                interactions / seconds, 1),
        }
        if faults is not None:
            overhead["engines"][name]["byzantine_lies"] = sum(
                r.fault_events["byzantine_lies"] for r in results)
        per_sec = overhead["engines"][name]["interactions_per_second"]
        print(f"  {name}: {per_sec:.3g} interactions/s")
    overhead["overhead_ratio"] = round(
        overhead["engines"]["clean"]["interactions_per_second"]
        / overhead["engines"]["byzantine"]["interactions_per_second"],
        2)
    print(f"  byzantine-injection overhead: "
          f"{overhead['overhead_ratio']}x")
    record["count_engine_overhead"] = overhead

    if BYZANTINE_OUTPUT.exists():
        document = json.loads(BYZANTINE_OUTPUT.read_text())
    else:
        document = {"history": []}
    document["history"].append(record)
    BYZANTINE_OUTPUT.write_text(json.dumps(document, indent=2) + "\n")
    print(f"appended record to {BYZANTINE_OUTPUT}")
    return 0


#: The distributed-sweep scaling workload (``--distributed``): the
#: default-scale figure-4 grid, drained fresh (empty store, temp
#: output dir) once per worker count.  The CSV digest must match
#: across every leg — distribution may only change wall time, never
#: bytes — and the fleet audit must report zero duplicate simulations.
DISTRIBUTED_SWEEP = ["figure4", "--scale", "default"]
DISTRIBUTED_WORKER_COUNTS = (1, 2, 4, 8)


def _run_sweep_leg(workers: int) -> dict:
    """One cold sweep with ``workers`` cooperating processes."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    with tempfile.TemporaryDirectory(
            prefix=f"bench-sweeps-{workers}w-") as tmp:
        command = [sys.executable, "-m", "repro", *DISTRIBUTED_SWEEP,
                   "--output-dir", tmp]
        if workers > 1:
            command += ["--workers", str(workers)]
        started = time.perf_counter()
        proc = subprocess.run(command, capture_output=True, text=True,
                              env=env, cwd=REPO_ROOT)
        seconds = time.perf_counter() - started
        if proc.returncode != 0:
            raise RuntimeError(
                f"sweep leg with {workers} worker(s) failed:\n"
                f"{proc.stdout}\n{proc.stderr}")
        csvs = sorted(pathlib.Path(tmp).glob("*.csv"))
        if len(csvs) != 1:
            raise RuntimeError(
                f"expected one CSV from the sweep leg, found {csvs}")
        leg = {
            "workers": workers,
            "seconds": round(seconds, 2),
            "csv_sha256": hashlib.sha256(
                csvs[0].read_bytes()).hexdigest(),
        }
        duplicates = re.search(r"(\d+) duplicate simulation\(s\)",
                               proc.stdout)
        if duplicates is not None:
            leg["duplicate_simulations"] = int(duplicates.group(1))
        reclaims = re.search(r"(\d+) lease\(s\) reclaimed", proc.stdout)
        if reclaims is not None:
            leg["lease_reclaims"] = int(reclaims.group(1))
        return leg


def distributed_report(label: str | None = None) -> int:
    """Append a sweep-scaling measurement to BENCH_sweeps.json.

    Wall time of the default-scale figure-4 sweep at 1/2/4/8
    cooperating workers, each leg against a fresh store in a temp
    output directory.  Three correctness gates ride along: every leg's
    CSV digest must be identical (distribution never changes bytes),
    every multi-worker leg's fleet audit must report zero duplicate
    simulations, and a failed leg aborts the record.

    The speedup ceiling is ``min(workers, cpu_count)``: the engines
    are CPU-bound numpy loops, so worker processes beyond the core
    count only add lease/poll overhead.  The record keeps
    ``cpu_count`` so a reader never compares a 1-core container's
    numbers against a workstation's.
    """
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "git": git_revision(),
        "label": label,
        "sweep": " ".join(DISTRIBUTED_SWEEP),
        "cpu_count": os.cpu_count(),
        "note": ("speedup is bounded by min(workers, cpu_count); on a "
                 "single-core host the legs only measure coordination "
                 "overhead, not parallelism"),
        "legs": [],
    }
    for workers in DISTRIBUTED_WORKER_COUNTS:
        print(f"measuring {' '.join(DISTRIBUTED_SWEEP)} with "
              f"{workers} worker(s)...", flush=True)
        leg = _run_sweep_leg(workers)
        record["legs"].append(leg)
        print(f"  {workers} worker(s): {leg['seconds']} s, "
              f"{leg.get('duplicate_simulations', 0)} duplicate(s)")
    base = record["legs"][0]["seconds"]
    for leg in record["legs"]:
        leg["speedup_vs_single"] = round(base / leg["seconds"], 2)
    digests = {leg["csv_sha256"] for leg in record["legs"]}
    record["csv_identical_across_legs"] = len(digests) == 1
    if len(digests) != 1:
        raise AssertionError(
            f"distributed legs produced differing CSVs: {digests}")
    duplicates = sum(leg.get("duplicate_simulations", 0)
                     for leg in record["legs"])
    record["total_duplicate_simulations"] = duplicates
    print(f"csv identical across legs: "
          f"{record['csv_identical_across_legs']}, "
          f"{duplicates} duplicate simulation(s) total")
    if SWEEPS_OUTPUT.exists():
        document = json.loads(SWEEPS_OUTPUT.read_text())
    else:
        document = {"history": []}
    document["history"].append(record)
    SWEEPS_OUTPUT.write_text(json.dumps(document, indent=2) + "\n")
    print(f"appended record to {SWEEPS_OUTPUT}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default=None,
                        help="free-form tag for this record")
    parser.add_argument("--engines", nargs="+",
                        default=["count", "batch", "ensemble",
                                 "count-ensemble",
                                 "count-ensemble-jit"],
                        help="engines to measure, applied to the "
                             "matrix AND the --scaling rows (default: "
                             "count batch ensemble count-ensemble "
                             "count-ensemble-jit)")
    parser.add_argument("--full", action="store_true",
                        help="run every engine on the full 100-trial "
                             "workload (slow: the count engine takes "
                             "about 80 s)")
    parser.add_argument("--scaling", action="store_true",
                        help="also measure the large-n rows (n = 10^5 "
                             "for both ensembles, n = 10^6 for the "
                             "count ensemble) under a fixed per-trial "
                             "interaction cap")
    parser.add_argument("--dry-run", action="store_true",
                        help="CI smoke mode: one small count-ensemble "
                             "measurement, cross-checked but not "
                             "recorded")
    parser.add_argument("--service", action="store_true",
                        help="measure the HTTP simulation service "
                             "(cold vs warm req/s, p50/p95 latency, "
                             "coalescing at 64 concurrent identical "
                             "requests) and append to "
                             "BENCH_service.json instead")
    parser.add_argument("--byzantine", action="store_true",
                        help="measure the byzantine machinery "
                             "(rounds/s for the message-passing "
                             "engine, byzantine-injection overhead "
                             "vs clean on the count engine) and "
                             "append to BENCH_byzantine.json instead")
    parser.add_argument("--distributed", action="store_true",
                        help="measure distributed sweep execution "
                             "(default-scale figure-4 wall time at "
                             "1/2/4/8 workers, duplicate audit, CSV "
                             "byte-identity) and append to "
                             "BENCH_sweeps.json instead")
    args = parser.parse_args(argv)

    if args.service:
        return service_report(label=args.label)
    if args.byzantine:
        return byzantine_report(label=args.label)
    if args.distributed:
        return distributed_report(label=args.label)
    unknown = sorted(set(args.engines) - set(ENGINE_NAMES))
    if unknown:
        parser.error(f"unknown engine(s) {unknown}; "
                     f"choose from {ENGINE_NAMES}")

    if args.dry_run:
        # Import/shape smoke check on the n = 10^4 workload: measure()
        # raises if the engine's telemetry disagrees with its results.
        outcome = measure("count-ensemble", 10)
        print(f"dry run ok: count-ensemble settled "
              f"{outcome['settled']}/10 trials at n={WORKLOAD['n']}, "
              f"{outcome['interactions_per_second']:.3g} "
              "interactions/s (not recorded)")
        return 0

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "git": git_revision(),
        "label": args.label,
        "kernels": kernels_metadata(),
        "engines": {},
    }
    for engine in args.engines:
        trials = (WORKLOAD["trials"] if args.full
                  else QUICK_TRIALS.get(engine, WORKLOAD["trials"]))
        print(f"measuring {engine} ({trials} trials)...", flush=True)
        record["engines"][engine] = measure(engine, trials)
        per_sec = record["engines"][engine]["interactions_per_second"]
        print(f"  {engine}: {per_sec:.3g} interactions/s "
              f"in {record['engines'][engine]['seconds']} s")
    if {"count", "ensemble"} <= record["engines"].keys():
        record["speedup_ensemble_vs_count"] = round(
            record["engines"]["ensemble"]["interactions_per_second"]
            / record["engines"]["count"]["interactions_per_second"], 2)
        print(f"ensemble vs count: "
              f"{record['speedup_ensemble_vs_count']}x per interaction")

    if args.scaling:
        record["scaling"] = measure_scaling(args.engines)

    if OUTPUT.exists():
        document = json.loads(OUTPUT.read_text())
    else:
        document = {"workload": WORKLOAD, "history": []}
    document["history"].append(record)
    OUTPUT.write_text(json.dumps(document, indent=2) + "\n")
    print(f"appended record to {OUTPUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
