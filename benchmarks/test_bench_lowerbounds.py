"""Benchmarks: the two lower-bound experiments (thm-b1, thm-c1)."""

import math

from conftest import attach_rows

from repro.experiments.four_state_census import census_summary, scaling_rows
from repro.experiments.io import format_table
from repro.experiments.lowerbound_logn import propagation_rows


def test_info_propagation(benchmark, scale):
    """thm-c1: K_t cover time is Theta(log n) parallel time."""
    rows = benchmark.pedantic(
        lambda: propagation_rows(scale), rounds=1, iterations=1)
    attach_rows(benchmark, rows)
    print()
    print(format_table(rows, title="Omega(log n) information propagation"))

    for row in rows:
        # Simulation matches the closed form...
        assert row["mean_parallel_time"] == \
            __import__("pytest").approx(
                row["exact_expected_parallel_time"], rel=0.15)
        # ...and sits near ln(n), bounding any exact protocol below.
        assert 0.5 < row["time_over_log_n"] < 1.5

    # Growth across the sweep is logarithmic: doubling the decades
    # adds, not multiplies.
    populations = [row["n"] for row in rows]
    times = [row["mean_parallel_time"] for row in rows]
    expected_gap = math.log(populations[-1] / populations[0])
    assert times[-1] - times[0] == __import__("pytest").approx(
        expected_gap, rel=0.35)


def test_four_state_census(benchmark, scale):
    """thm-b1: all correct 4-state candidates are Omega(1/eps)-slow."""
    summary, result = benchmark.pedantic(
        lambda: census_summary(scale), rounds=1, iterations=1)
    benchmark.extra_info["summary"] = dict(summary)
    print()
    print(format_table([summary], title="Four-state census"))

    assert summary["num_checked"] > 0
    assert summary["all_survivors_slow"]
    assert summary["no_conserved_potentials"]


def test_census_survivor_scaling(benchmark, scale):
    """Empirical Omega(1/eps): time grows superlinearly in 1/eps."""
    rows = benchmark.pedantic(
        lambda: scaling_rows(scale), rounds=1, iterations=1)
    attach_rows(benchmark, rows)
    print()
    print(format_table(rows, title="Canonical survivor scaling"))

    assert all(row["error_fraction"] == 0.0 for row in rows)
    ordered = sorted(rows, key=lambda r: r["one_over_epsilon"])
    first, last = ordered[0], ordered[-1]
    margin_ratio = last["one_over_epsilon"] / first["one_over_epsilon"]
    time_ratio = last["mean_parallel_time"] / first["mean_parallel_time"]
    # Claim B.8: at least linear growth in 1/eps (log n slack absorbed
    # by the floor of 0.8x).
    assert time_ratio > 0.8 * margin_ratio
