"""Shared measurement core for the simulation-service benchmarks.

Used by both ``test_bench_service.py`` (pytest-benchmark leg) and
``report.py --service`` (the ``BENCH_service.json`` trajectory).  All
measurements drive the real stack — stdlib HTTP bridge, ASGI app,
job queue, worker pool, run store — over a loopback socket, so the
req/s and latency numbers include HTTP parsing and JSON round trips,
not just in-process function calls.

Three workloads:

* **cold** — distinct specs (varying seeds), each an uncached point:
  every request runs one real (tiny) simulation.  Bounded by engine
  time, not HTTP overhead.
* **warm** — one spec, submitted repeatedly after the first commit:
  every request is a content-addressed cache hit with zero engine
  work.  This is the service's fast path; p50/p95 here are the
  HTTP + store-read cost.
* **coalesce** — N concurrent submissions of ONE uncached spec:
  exactly one simulation must run, every response carries the same
  fingerprint, and the coalescing ratio (requests per simulation)
  is N.
"""

from __future__ import annotations

import json
import sys
import pathlib
import tempfile
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.service import (  # noqa: E402
    ServiceConfig,
    SimulationService,
    make_app,
)
from repro.service.http import start_in_thread  # noqa: E402
from repro.telemetry.metrics import Histogram  # noqa: E402

#: The benchmark point: small and fast (a four-state point settles in
#: milliseconds at n = 120) so the HTTP/queue/store overhead — the
#: thing this file measures — dominates the cold path's engine time
#: as little as possible while staying a *real* simulation.
BASE_SPEC = {
    "schema": 1,
    "protocol": {"kind": "four-state"},
    "n": 120,
    "epsilon": 0.2,
    "num_trials": 2,
    "seed": 0,
}


class ServiceUnderTest:
    """A served SimulationService on a loopback socket."""

    def __init__(self, output_dir: str | None = None, *,
                 num_workers: int = 2, queue_size: int = 256):
        self._tmp = None
        if output_dir is None:
            self._tmp = tempfile.TemporaryDirectory(
                prefix="repro-service-bench-")
            output_dir = self._tmp.name
        self.service = SimulationService(config=ServiceConfig(
            output_dir=output_dir, num_workers=num_workers,
            queue_size=queue_size))
        self.service.start()
        self.server, self.base_url = start_in_thread(
            make_app(self.service))

    def close(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        self.service.stop(graceful=False)
        if self._tmp is not None:
            self._tmp.cleanup()

    # -- client ------------------------------------------------------

    def post_run(self, spec: dict, *, wait: float = 0.0) -> dict:
        query = f"?wait={wait:g}" if wait else ""
        request = urllib.request.Request(
            self.base_url + "/runs" + query,
            data=json.dumps(spec).encode(),
            headers={"content-type": "application/json"},
            method="POST")
        with urllib.request.urlopen(request, timeout=300) as response:
            return json.loads(response.read())

    def engine_runs(self) -> float:
        return self.service.sink.total("engine.runs")


def spec_with_seed(seed: int) -> dict:
    return {**BASE_SPEC, "seed": seed}


def _timed(callable_) -> tuple:
    started = time.perf_counter()
    result = callable_()
    return time.perf_counter() - started, result


def _latency_stats(samples: Histogram) -> dict:
    return {
        "requests": samples.count,
        "p50_ms": round(samples.quantile(0.50) * 1e3, 3),
        "p95_ms": round(samples.quantile(0.95) * 1e3, 3),
        "max_ms": round(samples.max * 1e3, 3),
        "mean_ms": round(samples.mean * 1e3, 3),
    }


def measure_cold(sut: ServiceUnderTest, requests: int = 40, *,
                 seed_base: int = 10_000) -> dict:
    """Distinct uncached specs, serial: full simulate-per-request."""
    samples = Histogram()
    total, _ = _timed(lambda: [
        samples.add(_timed(lambda s=seed: sut.post_run(
            spec_with_seed(s), wait=300))[0])
        for seed in range(seed_base, seed_base + requests)])
    return {**_latency_stats(samples),
            "requests_per_second": round(requests / total, 1)}


def measure_warm(sut: ServiceUnderTest, requests: int = 200, *,
                 seed: int = 77) -> dict:
    """One committed spec, submitted repeatedly: pure cache hits."""
    spec = spec_with_seed(seed)
    first = sut.post_run(spec, wait=300)
    assert first["status"] == "done"
    engine_before = sut.engine_runs()
    samples = Histogram()
    total, _ = _timed(lambda: [
        samples.add(_timed(lambda: sut.post_run(spec))[0])
        for _ in range(requests)])
    assert sut.engine_runs() == engine_before, \
        "warm requests must never enter an engine"
    return {**_latency_stats(samples),
            "requests_per_second": round(requests / total, 1)}


def measure_coalescing(sut: ServiceUnderTest, concurrent: int = 64, *,
                       seed: int = 424_242) -> dict:
    """``concurrent`` simultaneous POSTs of one uncached spec."""
    spec = spec_with_seed(seed)
    engine_before = sut.engine_runs()
    enqueued_before = sut.service.sink.total("service.enqueued")

    with ThreadPoolExecutor(max_workers=concurrent) as pool:
        total, views = _timed(lambda: list(pool.map(
            lambda _: sut.post_run(spec, wait=300),
            range(concurrent))))

    ids = {view["id"] for view in views}
    assert len(ids) == 1, f"expected one fingerprint, got {len(ids)}"
    simulations = sut.service.sink.total("service.enqueued") \
        - enqueued_before
    assert simulations == 1, \
        f"{simulations} simulations ran for one coalesced spec"
    trial_runs = sut.engine_runs() - engine_before
    return {
        "concurrent_requests": concurrent,
        "simulations_run": int(simulations),
        "engine_trial_runs": int(trial_runs),
        "coalescing_ratio": round(concurrent / simulations, 1),
        "wall_seconds": round(total, 3),
    }


def run_benchmark(*, cold_requests: int = 40, warm_requests: int = 200,
                  concurrent: int = 64) -> dict:
    """The full record ``report.py --service`` appends."""
    sut = ServiceUnderTest()
    try:
        record = {
            "cold": measure_cold(sut, cold_requests),
            "warm": measure_warm(sut, warm_requests),
            "coalescing": measure_coalescing(sut, concurrent),
        }
        record["warm_over_cold_speedup"] = round(
            record["warm"]["requests_per_second"]
            / record["cold"]["requests_per_second"], 1)
        return record
    finally:
        sut.close()
