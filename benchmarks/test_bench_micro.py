"""Micro-benchmarks for the performance-critical primitives.

These guard the constants that the engines' complexity claims rest
on: Fenwick-tree operations (the count engine's O(log s) per step),
the vectorized AVC kernel (the batch engine's per-pair cost), and the
SSA event loop.
"""

import numpy as np
import pytest

from repro import AVCProtocol, ThreeStateProtocol
from repro.core.vectorized import AVCBatchKernel
from repro.crn import GillespieSimulator, protocol_to_crn
from repro.protocols.leader_election import (
    LeveledLeaderElection,
    PairwiseLeaderElection,
)
from repro.sim import NullSkippingEngine
from repro.sim.fenwick import FenwickTree


def test_fenwick_sample_update_cycle(benchmark):
    """One count-engine step worth of Fenwick work (s = 1024)."""
    rng = np.random.default_rng(0)
    weights = rng.integers(1, 50, size=1024).tolist()
    tree = FenwickTree(weights)
    targets = rng.integers(0, tree.total - 100, size=4096).tolist()

    def cycle():
        for target in targets:
            index = tree.find(target)
            tree.add(index, -1)
            other = tree.find(target % tree.total)
            tree.add(index, 1)
            tree.add(other, 0)
        return index

    benchmark(cycle)


def test_avc_kernel_throughput(benchmark):
    """Vectorized kernel over 100k random pairs (s = 1026)."""
    protocol = AVCProtocol.with_num_states(1026)
    kernel = AVCBatchKernel(protocol)
    rng = np.random.default_rng(1)
    s = protocol.num_states
    index_x = rng.integers(0, s, size=100_000)
    index_y = rng.integers(0, s, size=100_000)
    new_x, new_y = benchmark(kernel, index_x, index_y)
    assert len(new_x) == 100_000


def test_ssa_event_loop(benchmark):
    """Gillespie SSA on the compiled three-state network."""
    network = protocol_to_crn(ThreeStateProtocol())
    simulator = GillespieSimulator(network, volume=999.0)

    def run():
        result = simulator.run({"A": 600, "B": 400}, rng=2,
                               max_events=5_000, t_max=1e9)
        return result

    result = benchmark(run)
    assert result.events > 0


@pytest.mark.parametrize("protocol", [
    PairwiseLeaderElection(), LeveledLeaderElection(levels=8),
], ids=lambda p: p.name)
def test_leader_election_run(benchmark, protocol):
    """Electing a leader among 2000 agents (null-skipping engine)."""
    engine = NullSkippingEngine(protocol)
    result = benchmark(engine.run, protocol.initial_counts(2000), rng=3)
    assert result.settled
