"""Setup shim.

The environment this repository targets may lack the ``wheel`` package
(fully offline), in which case PEP 517 editable installs fail with
``invalid command 'bdist_wheel'``.  Keeping a ``setup.py`` enables the
legacy path::

    pip install -e . --no-build-isolation --no-use-pep517

All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
