#!/usr/bin/env python
"""Majority as chemistry: population protocols as reaction networks.

[CDS+13] built population protocols out of DNA strand displacement;
[CCN12] showed the biological cell-cycle switch computes approximate
majority.  This example makes the correspondence concrete:

1. compile the 3-state protocol to its chemical reaction network and
   simulate it exactly with the Gillespie SSA — the stochastic
   mass-action semantics equals the protocol's continuous-time model;
2. run the cell-cycle-switch motif (mutual inhibition +
   self-activation) on the same input and watch it compute the same
   majority;
3. compile AVC itself to a CRN: an *exact* molecular majority circuit,
   at the price of more species.

Run:  python examples/chemical_majority.py [--molecules N]
"""

import argparse

from repro import AVCProtocol, ThreeStateProtocol
from repro.crn import (
    GillespieSimulator,
    cell_cycle_switch,
    protocol_to_crn,
)
from repro.rng import spawn_many


def consensus_stop(majority_species, minority_species, others):
    def stop(counts):
        if any(counts.get(s, 0) for s in others):
            return False
        return (counts.get(majority_species, 0) == 0
                or counts.get(minority_species, 0) == 0)
    return stop


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--molecules", type=int, default=200)
    parser.add_argument("--seed", type=int, default=21)
    args = parser.parse_args()
    n = args.molecules
    count_x = int(0.6 * n)
    count_y = n - count_x
    volume = float(n - 1)

    print(f"=== 3-state protocol, compiled to chemistry ({n} molecules, "
          f"{count_x}:{count_y}) ===")
    network = protocol_to_crn(ThreeStateProtocol())
    for reaction in network.reactions:
        print(f"  {reaction}")
    simulator = GillespieSimulator(network, volume=volume)
    result = simulator.run({"A": count_x, "B": count_y}, rng=args.seed,
                           max_events=10**6,
                           stop=consensus_stop("A", "B", ("_",)))
    winner = "A" if result.counts.get("A", 0) else "B"
    print(f"  consensus on {winner} after {result.time:.1f} time units, "
          f"{result.events} reactions")

    print(f"\n=== the cell-cycle switch motif on the same input ===")
    switch = cell_cycle_switch()
    for reaction in switch.reactions:
        print(f"  {reaction}")
    outcomes = {"X": 0, "Y": 0}
    trials = 10
    for child in spawn_many(args.seed, trials):
        result = GillespieSimulator(switch, volume=volume).run(
            {"X": count_x, "Y": count_y}, rng=child, max_events=10**6,
            stop=consensus_stop("X", "Y", ("Z", "W")))
        outcomes["X" if result.counts.get("X", 0) else "Y"] += 1
    print(f"  {trials} runs from a 60:40 X majority: "
          f"X wins {outcomes['X']}, Y wins {outcomes['Y']} "
          "(approximate majority, like [CCN12] predicts)")

    print(f"\n=== AVC as an exact molecular circuit ===")
    protocol = AVCProtocol(m=5, d=1)
    avc_network = protocol_to_crn(protocol)
    print(f"  {protocol.name}: {len(avc_network.species)} species, "
          f"{len(avc_network.reactions)} reactions, e.g.:")
    for reaction in avc_network.reactions[:4]:
        print(f"    {reaction}")

    def avc_consensus(counts):
        positive = sum(c for species, c in counts.items()
                       if species.startswith("+") and c)
        negative = sum(c for species, c in counts.items()
                       if species.startswith("-") and c)
        return (positive == 0) != (negative == 0)

    simulator = GillespieSimulator(avc_network, volume=volume)
    initial = {str(protocol.initial_state("A")): count_x,
               str(protocol.initial_state("B")): count_y}
    wrong = 0
    for child in spawn_many(args.seed + 1, trials):
        result = simulator.run(initial, rng=child, max_events=10**6,
                               stop=avc_consensus)
        if not any(c and s.startswith("+")
                   for s, c in result.counts.items()):
            wrong += 1
    print(f"  {trials} runs from the same 60:40 majority: "
          f"{trials - wrong} correct, {wrong} wrong — exact majority, "
          "molecularly")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
