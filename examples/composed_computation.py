#!/usr/bin/env python
"""Composition: majority and leader election in a single execution.

Population protocols compose in parallel [AAD+06]: give every agent a
*pair* of states and update the components independently on the same
interaction sequence.  This is how richer population computations are
assembled — e.g. phased algorithms that need a leader AND an input
predicate.

This example runs the 3-state majority protocol composed with leader
election on one population, then inspects both marginals: the colony
agrees on the majority reading while simultaneously electing exactly
one coordinator, for free (composition costs states, not time — the
run settles when the slower component does).

Run:  python examples/composed_computation.py [--agents N]
"""

import argparse

from repro import PairwiseLeaderElection, ProductProtocol, RunSpec, \
    ThreeStateProtocol, run
from repro.sim import CountEngine


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--agents", type=int, default=200)
    parser.add_argument("--seed", type=int, default=8)
    args = parser.parse_args()
    n = args.agents
    count_a = int(0.6 * n)

    majority = ThreeStateProtocol()
    leader = PairwiseLeaderElection()
    product = ProductProtocol(majority, leader, require_both=True)
    print(f"composed protocol: {product.name}")
    print(f"state space: {majority.num_states} x {leader.num_states} = "
          f"{product.num_states} states per agent")

    counts = product.pair_counts(
        majority.initial_counts(count_a, n - count_a),
        leader.initial_counts(n), rng=args.seed)
    result = run(RunSpec(product, initial=counts, seed=args.seed + 1))
    assert result.settled

    majority_marginal = product._marginal(result.final_counts, 0)
    leader_marginal = product._marginal(result.final_counts, 1)
    decided = "A" if majority_marginal.get("A", 0) else "B"
    print(f"\nafter {result.parallel_time:.1f} parallel time:")
    print(f"  majority component: consensus on {decided} "
          f"({majority_marginal})")
    print(f"  leader component:   {leader_marginal.get('L', 0)} leader, "
          f"{leader_marginal.get('F', 0)} followers")

    print("\nTiming comparison (same seed streams, 20 trials each):")
    from repro.rng import spawn_many
    from repro.sim.results import TrialStats

    def mean(engine, build):
        results = [engine.run(build(child), rng=child)
                   for child in spawn_many(args.seed + 2, 20)]
        return TrialStats.from_results(results).mean_parallel_time

    solo_majority = mean(CountEngine(majority),
                         lambda _: majority.initial_counts(count_a,
                                                           n - count_a))
    solo_leader = mean(CountEngine(leader),
                       lambda _: leader.initial_counts(n))
    composed = mean(CountEngine(product),
                    lambda child: product.pair_counts(
                        majority.initial_counts(count_a, n - count_a),
                        leader.initial_counts(n), rng=child))
    print(f"  majority alone:  {solo_majority:8.1f}")
    print(f"  leader alone:    {solo_leader:8.1f}")
    print(f"  composed (both): {composed:8.1f}  "
          "(~max of the two, not their sum)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
