#!/usr/bin/env python
"""Self-stabilization: AVC survives adversarial state corruption.

Lemma A.1 of the paper holds for *arbitrary* starting configurations:
from any mix of states, AVC converges to the sign of the conserved
total value.  Consequence: if an attacker rewrites agents mid-run, the
system simply re-converges to the (possibly new) true majority of the
corrupted state — there is no way to confuse it short of actually
changing which side holds the weight.

This example runs a majority computation, interrupts it twice with
corruptions (one harmless, one that flips the weighted majority), and
shows the decision tracking the conserved sum each time.

Run:  python examples/self_stabilizing_majority.py
"""

import argparse

from repro import AVCProtocol
from repro.core.states import strong_state, weak_state
from repro.sim import CountEngine


def describe(protocol, counts, label):
    total = protocol.total_value(counts)
    positive = sum(c for s, c in counts.items() if s.sign > 0)
    negative = sum(c for s, c in counts.items() if s.sign < 0)
    print(f"  {label}: conserved sum {total:+d}, "
          f"{positive} positive-sign vs {negative} negative-sign agents")
    return total


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    protocol = AVCProtocol(m=5, d=1)
    engine = CountEngine(protocol)
    n = 501
    counts = protocol.initial_counts(280, 221)  # A ahead by 59 agents
    print(f"n={n}, inputs 280 A vs 221 B (sum {protocol.total_value(counts):+d})")

    print("\nPhase 1: run for a while, then a *harmless* corruption")
    partial = engine.run(counts, rng=args.seed, max_steps=20 * n)
    describe(protocol, partial.final_counts, "before corruption")
    counts = dict(partial.final_counts)
    counts[weak_state(-1)] = counts.get(weak_state(-1), 0) + 40
    total = describe(protocol, counts, "after injecting 40 extra -0s")
    assert total > 0

    print("\nPhase 2: resume, then a corruption that FLIPS the majority")
    partial = engine.run(counts, rng=args.seed + 1, max_steps=20 * n)
    counts = dict(partial.final_counts)
    # Replace positive weight with a big negative block.
    removed = 0
    for state in sorted(counts, key=lambda s: -s.value):
        while state.value > 0 and counts.get(state, 0) and removed < 120:
            counts[state] -= 1
            removed += 1
    counts = {s: c for s, c in counts.items() if c}
    counts[strong_state(-5)] = counts.get(strong_state(-5), 0) + 120
    total = describe(protocol, counts,
                     "after replacing 120 positive agents with -5s")
    assert total < 0

    print("\nPhase 3: run to completion from the corrupted state")
    final = engine.run(counts, rng=args.seed + 2)
    outcome = "A (positive)" if final.decision else "B (negative)"
    print(f"  settled on {outcome} after {final.parallel_time:.1f} more "
          "parallel time")
    print("\nThe decision followed the conserved sum through both "
          "corruptions — exactness is a property of the *weights*, not "
          "of any fragile execution state.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
