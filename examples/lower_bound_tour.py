#!/usr/bin/env python
"""A tour of the paper's two lower bounds, computationally.

Part 1 (Theorem B.1, four states): enumerate a pencil of four-state
protocols around the known-correct one, machine-check the paper's
correctness properties by configuration-space reachability, and verify
that every correct candidate carries the discrepancy invariant that
forces Omega(1/eps) convergence — then measure that scaling.

Part 2 (Theorem C.1, any number of states): sample the growth of the
knowledge set K_t and show the cover time is Theta(log n) parallel
time, matching the closed-form expectation.

Run:  python examples/lower_bound_tour.py
"""

import argparse
import math

from repro import RunSpec, run_trials
from repro.lowerbounds import (
    check_candidate,
    conserved_potential,
    expected_propagation_steps,
    has_discrepancy_invariant,
    paper_four_state_candidate,
    run_census,
    simulate_propagation,
)
from repro.lowerbounds.four_state_search import OUTCOMES, X, Y
from repro.rng import spawn_many


def part_one(seed: int) -> None:
    print("=== Theorem B.1: four states cannot be fast ===")
    paper = paper_four_state_candidate()
    print(f"canonical candidate: {paper.describe()}")
    print(f"  correct on n in (3,5,7): "
          f"{check_candidate(paper, sizes=(3, 5, 7))}")
    print(f"  discrepancy invariant (Claim B.8): "
          f"{has_discrepancy_invariant(paper.rule_dict)}")
    print(f"  conserved potential (Claim B.9): "
          f"{conserved_potential(paper.rule_dict)}")

    # Sweep the [X, Y] rule across all ten outcomes.
    rule_sets = []
    for outcome in OUTCOMES:
        rules = dict(paper.rules)
        rules[(X, Y)] = outcome
        rule_sets.append(tuple(rules.items()))
    result = run_census(sizes=(3, 5), gammas=((0, 1),),
                        rule_sets=rule_sets)
    print(f"\npencil census over the [X,Y] rule: "
          f"{result.num_checked} candidates, "
          f"{result.num_survivors} correct")
    for candidate in result.survivors:
        print(f"  survivor: {candidate.describe()}")
    print(f"  all survivors slow (discrepancy invariant): "
          f"{result.all_survivors_slow}")

    print("\nempirical Omega(1/eps) scaling of the canonical protocol:")
    protocol = paper.to_protocol()
    for n in (25, 75, 225):
        epsilon = 5 / n
        stats = run_trials(RunSpec(protocol, num_trials=20, seed=seed,
                                   n=n, epsilon=epsilon),
                           stats=True)
        print(f"  1/eps={1 / epsilon:>5.0f}: mean parallel time "
              f"{stats.mean_parallel_time:>8.1f} (error "
              f"{stats.error_fraction:.2f})")


def part_two(seed: int) -> None:
    print("\n=== Theorem C.1: nothing beats Omega(log n) ===")
    print(f"{'n':>8} {'simulated':>10} {'exact E':>10} "
          f"{'time/ln(n)':>11}")
    for n in (100, 1000, 10_000):
        samples = [simulate_propagation(n, rng=child).parallel_time
                   for child in spawn_many(seed + n, 30)]
        mean_time = sum(samples) / len(samples)
        exact = expected_propagation_steps(n) / n
        print(f"{n:>8} {mean_time:>10.2f} {exact:>10.2f} "
              f"{mean_time / math.log(n):>11.2f}")
    print("the ratio stays near 1: information needs Theta(log n) "
          "parallel time to reach everyone, so no exact protocol can "
          "converge faster.")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()
    part_one(args.seed)
    part_two(args.seed)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
