#!/usr/bin/env python
"""Quickstart: solve exact majority with the AVC protocol.

Builds an Average-and-Conquer protocol with 64 states, runs it on a
population of 10,001 agents where the majority is decided by a margin
of 101 agents (epsilon ~ 1%), and prints the outcome next to the
four-state baseline and Theorem 4.1's prediction.

Run:  python examples/quickstart.py [--seed SEED]
"""

import argparse

from repro import AVCProtocol, FourStateProtocol, RunSpec, run_majority
from repro.analysis import avc_time_bound, four_state_time_bound


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument("--n", type=int, default=10_001)
    args = parser.parse_args()

    n = args.n
    epsilon = 101 / n

    protocol = AVCProtocol.with_num_states(s=64)
    print(f"population n={n}, margin eps={epsilon:.4f} "
          f"({round(epsilon * n)} agents)")
    print(f"protocol: {protocol.name} with s={protocol.num_states} states")

    result = run_majority(RunSpec(protocol, n=n, epsilon=epsilon,
                                  seed=args.seed))
    print(f"\nAVC     : decided {'A' if result.decision else 'B'} "
          f"(correct={result.correct}) in {result.parallel_time:.1f} "
          f"parallel time ({result.steps} interactions)")
    print(f"          Theorem 4.1 bound (constant=1): "
          f"{avc_time_bound(n, protocol.num_states, epsilon):.1f}")

    baseline = run_majority(RunSpec(FourStateProtocol(), n=n,
                                    epsilon=epsilon, seed=args.seed))
    print(f"4-state : decided {'A' if baseline.decision else 'B'} "
          f"(correct={baseline.correct}) in "
          f"{baseline.parallel_time:.1f} parallel time")
    print(f"          [DV12] bound (constant=1): "
          f"{four_state_time_bound(n, epsilon):.1f}")

    speedup = baseline.parallel_time / result.parallel_time
    print(f"\nAVC speedup over the 4-state protocol: {speedup:.1f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
