#!/usr/bin/env python
"""Exact majority voting in a sensor network: topology matters.

A field of cheap sensors must agree on a binary reading (e.g. "is the
threshold exceeded?") using anonymous pairwise gossip.  This example
runs exact-majority protocols over several interaction topologies with
the agent engine:

* On well-connected topologies (clique, random 4-regular, torus) the
  paper's protocols converge comfortably.
* On a *star* (every sensor talks only to one hub), the clique form of
  the 4-state protocol deadlocks — opposite strong leaves can never
  meet — while [DV12]'s interval-consensus variant, whose strong
  tokens random-walk through weak nodes, stays exact on every
  connected graph.

Run:  python examples/sensor_network_majority.py [--sensors N]
"""

import argparse

from repro import FourStateProtocol, IntervalConsensusProtocol
from repro.graphs import (
    complete_graph,
    grid_graph,
    random_regular_graph,
    star_graph,
)
from repro.sim import AgentEngine


def run_on(protocol, graph, count_a, count_b, seed, budget=5000.0):
    engine = AgentEngine(protocol, graph=graph)
    return engine.run(protocol.initial_counts(count_a, count_b),
                      rng=seed, expected=1, max_parallel_time=budget)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sensors", type=int, default=64)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    n = args.sensors
    count_a = n // 2 + 4
    count_b = n - count_a
    side = int(n ** 0.5)
    topologies = [
        ("clique", complete_graph(n)),
        ("random 4-regular", random_regular_graph(n, 4, rng=args.seed)),
        ("torus", grid_graph(side, side, periodic=True)),
        ("star", star_graph(n)),
    ]

    print(f"{n} sensors, {count_a} read HIGH vs {count_b} LOW "
          f"(majority HIGH)\n")
    print(f"{'topology':>18} {'protocol':>20} {'nodes':>6} "
          f"{'settled':>8} {'correct':>8} {'parallel time':>14}")
    for name, graph in topologies:
        for protocol in (IntervalConsensusProtocol(), FourStateProtocol()):
            nodes = graph.number_of_nodes()
            split_a = count_a + (nodes - n) // 2
            result = run_on(protocol, graph, split_a, nodes - split_a,
                            args.seed)
            time_text = (f"{result.parallel_time:.1f}" if result.settled
                         else f">{result.parallel_time:.0f} (stuck)")
            print(f"{name:>18} {protocol.name:>20} {nodes:>6} "
                  f"{str(result.settled):>8} {str(result.correct):>8} "
                  f"{time_text:>14}")
    print("\nNote the star row: the clique-form four-state protocol "
          "cannot settle there, interval consensus can.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
