#!/usr/bin/env python
"""The memory/time/accuracy trade-off the paper is about.

For a fixed hard input (n = 1001, majority decided by one agent) this
example sweeps the AVC state count ``s`` and prints the convergence
time next to the two baselines:

* the 3-state protocol is fast but *wrong about half the time* at
  this margin;
* the 4-state protocol is exact but pays ~n parallel time;
* AVC interpolates: every doubling of ``s`` roughly halves the time
  (the ``1/(s eps)`` term of Theorem 4.1), with zero error throughout.

Run:  python examples/state_time_tradeoff.py [--seed SEED] [--trials T]
"""

import argparse

from repro import AVCProtocol, FourStateProtocol, RunSpec, \
    ThreeStateProtocol, run_trials
from repro.analysis import three_state_error_probability


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--trials", type=int, default=15)
    parser.add_argument("--n", type=int, default=1001)
    args = parser.parse_args()

    n = args.n
    epsilon = 1.0 / n
    print(f"n={n}, eps=1/n (majority by a single agent), "
          f"{args.trials} trials per row\n")
    header = (f"{'protocol':>16} {'s':>6} {'mean time':>10} "
              f"{'error':>7}  note")
    print(header)
    print("-" * len(header))

    stats = run_trials(RunSpec(ThreeStateProtocol(),
                               num_trials=args.trials, seed=args.seed,
                               n=n, epsilon=epsilon), stats=True)
    predicted = three_state_error_probability(n, epsilon)
    print(f"{'three-state':>16} {3:>6} {stats.mean_parallel_time:>10.1f} "
          f"{stats.error_fraction:>7.2f}  approximate "
          f"(PVV09 bound {predicted:.2f})")

    stats = run_trials(RunSpec(FourStateProtocol(),
                               num_trials=args.trials,
                               seed=args.seed + 1, n=n,
                               epsilon=epsilon), stats=True)
    print(f"{'four-state':>16} {4:>6} {stats.mean_parallel_time:>10.1f} "
          f"{stats.error_fraction:>7.2f}  exact, Theta(n) at eps=1/n")

    for s in (8, 16, 32, 64, 128, 256, 512, 1024):
        protocol = AVCProtocol.with_num_states(s)
        stats = run_trials(RunSpec(protocol, num_trials=args.trials,
                                   seed=args.seed + s, n=n,
                                   epsilon=epsilon), stats=True)
        print(f"{'AVC':>16} {s:>6} {stats.mean_parallel_time:>10.1f} "
              f"{stats.error_fraction:>7.2f}  exact")
    print("\nEvery AVC row has error 0.00: memory buys speed, "
          "never correctness.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
