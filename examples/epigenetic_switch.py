#!/usr/bin/env python
"""The 3-state protocol as an epigenetic cell-memory switch [DMST07].

The paper's introduction notes that the three-state approximate
majority protocol was studied as a model of epigenetic cell memory by
nucleosome modification: ``A`` = methylated, ``B`` = acetylated,
blank = unmodified nucleosomes.  A healthy switch must (a) *hold*
a clear modification state against noise, and (b) *resolve* a nearly
balanced state quickly to one of the two stable states — even though
which one wins is then essentially a coin flip.

This example simulates both regimes on a population of nucleosomes,
prints fraction trajectories next to the mean-field ODE, and compares
the observed flip probability with [PVV09]'s Kullback-Leibler bound.

Run:  python examples/epigenetic_switch.py [--nucleosomes N]
"""

import argparse

import numpy as np

from repro import RunSpec, ThreeStateProtocol, run, run_trials
from repro.analysis import solve_three_state, three_state_error_probability
from repro.sim import TrajectoryRecorder


def show_trajectory(n: int, fraction_a: float, seed: int) -> None:
    protocol = ThreeStateProtocol()
    recorder = TrajectoryRecorder(interval_steps=max(1, n // 2))
    count_a = int(round(fraction_a * n))
    result = run(RunSpec(protocol,
                         initial={"A": count_a, "B": n - count_a},
                         seed=seed, recorder=recorder))
    steps, matrix = recorder.as_matrix()
    ode = solve_three_state(count_a / n, (n - count_a) / n,
                            t_max=float(steps[-1]) / n + 1.0)
    print(f"  start: {count_a} methylated / {n - count_a} acetylated; "
          f"settled to {'methylated' if result.decision else 'acetylated'} "
          f"in {result.parallel_time:.1f} generations of contact")
    print(f"  {'t':>7} {'methyl':>7} {'acetyl':>7} {'blank':>6} "
          f"{'(ODE methyl)':>12}")
    for k in range(0, len(steps), max(1, len(steps) // 8)):
        t = steps[k] / n
        a, b, blank = matrix[k] / n
        ode_a = float(np.interp(t, ode.times, ode.fraction("A")))
        print(f"  {t:>7.2f} {a:>7.3f} {b:>7.3f} {blank:>6.3f} "
              f"{ode_a:>12.3f}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nucleosomes", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()
    n = args.nucleosomes
    protocol = ThreeStateProtocol()

    print("=== Holding a committed state (80/20 methylated) ===")
    show_trajectory(n, 0.8, args.seed)

    print("\n=== Resolving an almost-balanced state (51/49) ===")
    show_trajectory(n, 0.51, args.seed + 1)

    print("\n=== Flip probability vs the [PVV09] bound ===")
    for count_a in (int(0.51 * n), int(0.55 * n), int(0.6 * n)):
        epsilon = (2 * count_a - n) / n
        stats = run_trials(RunSpec(protocol, num_trials=40,
                                   seed=args.seed + count_a,
                                   count_a=count_a,
                                   count_b=n - count_a), stats=True)
        bound = three_state_error_probability(n, epsilon)
        print(f"  eps={epsilon:.3f}: observed flip fraction "
              f"{stats.error_fraction:.3f}, KL bound {bound:.3f}")
    print("\nThe switch is fast but only approximately reliable — the "
          "trade-off AVC removes (at the cost of more states).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
